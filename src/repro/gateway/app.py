"""The Inference Gateway API application (Gateway API v2).

This is the OpenAI-compatible entry point of FIRST (§3.1).  Since API v2 the
request path is a composable middleware chain (see
:mod:`repro.gateway.pipeline`) over a typed
:class:`~repro.gateway.context.RequestContext`:

    Validation → Auth → RateLimit → ResponseCache → Accounting → Routing → Dispatch

``InferenceGatewayAPI`` itself is a thin assembly: it wires the substrates
(auth layer, rate limiter, caches, database, metrics, compute client), builds
the pipeline from ``GatewayConfig.middleware_factories`` and exposes the
endpoints.  Failures surface as typed error envelopes
(:mod:`repro.gateway.responses`) on the OpenAI-style endpoints and as typed
exceptions on the event-based target protocol.

Streaming (``stream=True``) is honoured end to end: the dispatch stage
threads a stream channel down to the serving engine, timestamps every token
at the gateway, and :meth:`submit_stream` hands callers a
:class:`~repro.gateway.context.GatewayStream` of OpenAI-style events.

All request-handling methods are simulation processes (generators): drive
them with ``env.process(...)`` or through the client SDK in
:mod:`repro.core.client`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..auth import GlobusAuthLikeService
from ..common import (
    IdGenerator,
    NotFoundError,
    ValidationError,
)
from ..faas import HANDLER_BATCH, ComputeClient
from ..federation import FederationRouter
from ..serving import (
    InferenceRequest,
    ModelCatalog,
    RequestKind,
    estimate_tokens,
)
from ..sim import Environment, Event, Resource
from ..workload.batchfile import parse_batch_lines
from .authlayer import GatewayAuthLayer
from .cache import ResponseCache
from .config import GatewayConfig
from .context import GatewayStream, RequestContext
from .database import BatchRecord, GatewayDatabase
from .metrics import GatewayMetrics
from .pipeline import GatewayPipeline, default_middleware_factories
from .ratelimit import SlidingWindowRateLimiter
from .responses import error_envelope

__all__ = ["InferenceGatewayAPI"]


@dataclass
class _RoutingCacheEntry:
    endpoint_id: str
    cached_at: float


class InferenceGatewayAPI:
    """The gateway application (Django-Ninja + Gunicorn/Uvicorn equivalent)."""

    def __init__(
        self,
        env: Environment,
        auth: GlobusAuthLikeService,
        compute_client: ComputeClient,
        router: FederationRouter,
        catalog: ModelCatalog,
        function_ids: Dict[str, str],
        config: Optional[GatewayConfig] = None,
        database: Optional[GatewayDatabase] = None,
        ids: Optional[IdGenerator] = None,
        topology=None,
    ):
        self.env = env
        self.config = config or GatewayConfig()
        self.auth_service = auth
        self.compute_client = compute_client
        self.router = router
        self.catalog = catalog
        #: Placement-plane view, when the deployment wires one; middleware
        #: factories (e.g. the reservation stage) resolve it from here.
        self.topology = topology if topology is not None else getattr(router, "view", None)
        self.function_ids = dict(function_ids)
        self.db = database or GatewayDatabase()
        self._ids = ids or IdGenerator()

        self.auth_layer = GatewayAuthLayer(
            env,
            auth,
            cache_enabled=self.config.cache_token_introspection,
            cache_ttl_s=self.config.token_cache_ttl_s,
            uncached_connection_setup_s=self.config.uncached_connection_setup_s,
        )
        self.rate_limiter = SlidingWindowRateLimiter(
            self.config.rate_limit_requests, self.config.rate_limit_window_s
        )
        self.metrics = GatewayMetrics(env)
        self.response_cache = (
            ResponseCache(self.config.response_cache_ttl_s)
            if self.config.enable_response_cache
            else None
        )
        self.workers = Resource(env, capacity=self.config.worker_slots())
        self._routing_cache: Dict[tuple, _RoutingCacheEntry] = {}

        #: Set by :class:`repro.obs.ObservabilityMiddlewareFactory` when the
        #: observability stage is part of the pipeline (must exist before the
        #: factories run, since the factory assigns it during construction).
        self.observability = None
        factories = self.config.middleware_factories or default_middleware_factories()
        self.pipeline = GatewayPipeline([factory(self) for factory in factories])
        #: Context of the most recently finished pipeline run (observability).
        self.last_context: Optional[RequestContext] = None

    # ------------------------------------------------------------------ helpers
    def function_for(self, handler: str) -> str:
        """Registered function id for a built-in handler name."""
        try:
            return self.function_ids[handler]
        except KeyError:
            raise NotFoundError(f"No registered function for handler {handler!r}") from None

    def worker_slot(self, duration_s: float):
        """Hold a worker slot for ``duration_s`` of CPU work (async mode)."""
        with self.workers.request() as slot:
            yield slot
            if duration_s > 0:
                yield self.env.timeout(duration_s)

    def route(self, model: str, tenant: Optional[str] = None):
        """Pick a federated endpoint for ``model`` (with a short-lived cache).

        Decisions are cached per (model, tenant) — tenant-aware policies
        (the SLO router) can shed different tenants differently.  A cached
        decision may reference an endpoint that has since been deregistered
        from the federation; the stale entry is evicted and a fresh
        selection is made instead of surfacing the lookup error.
        """
        key = (model, tenant)
        cached = self._routing_cache.get(key)
        now = self.env.now
        if cached is not None and now - cached.cached_at < self.config.routing_cache_ttl_s:
            try:
                return self.router.registry.get(cached.endpoint_id).endpoint
            except NotFoundError:
                self._routing_cache.pop(key, None)
        endpoint = yield from self.router.select(model, tenant=tenant)
        self._routing_cache[key] = _RoutingCacheEntry(endpoint.endpoint_id, now)
        return endpoint

    def validate_model(self, model: Optional[str]) -> str:
        if not model:
            raise ValidationError("Request body is missing 'model'")
        if model not in self.catalog:
            raise ValidationError(f"Unknown model: {model}")
        return self.catalog.get(model).name

    # ------------------------------------------------------------- typed request path
    def submit_request(self, access_token: str, request: InferenceRequest) -> Event:
        """Submit a typed :class:`InferenceRequest`; returns an event with the
        :class:`InferenceResult` (the benchmark client's target protocol)."""
        done = self.env.event()
        self.env.process(self._handle(access_token, request, done))
        return done

    def submit_stream(self, access_token: str, request: InferenceRequest) -> GatewayStream:
        """Submit a streaming request; returns a :class:`GatewayStream`.

        The stream's channel carries ``token`` events as the gateway observes
        them and exactly one terminal ``done``/``error`` event; the stream's
        ``done`` event resolves with the final result (or the typed failure).
        """
        request.stream = True
        stream = GatewayStream(self.env, request=request)
        self.env.process(self._handle(access_token, request, stream.done, egress=stream))
        return stream

    def _handle(self, access_token: str, request: InferenceRequest, done: Event,
                egress: Optional[GatewayStream] = None):
        """Pipeline driver: one simulation process per in-flight request."""
        ctx = RequestContext(
            access_token=access_token,
            request=request,
            started_at=self.env.now,
            egress=egress,
        )
        try:
            yield from self.pipeline.run(ctx)
            result = ctx.result
            if result is None:
                raise RuntimeError(
                    "Gateway pipeline finished without a result "
                    f"(stages: {self.pipeline.stage_names()})"
                )
            if egress is not None:
                egress.finish(result)
            if not done.triggered:
                done.succeed(result)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller, typed
            self._classify_failure(exc, ctx.model_name or request.model)
            if egress is not None:
                egress.fail(exc)
            if not done.triggered:
                done.fail(exc)
                done.defuse()
        finally:
            if ctx.sync_slot is not None:
                self.workers.release(ctx.sync_slot)
            self.last_context = ctx

    def _classify_failure(self, exc: Exception, model: str) -> None:
        from ..common import AuthenticationError, AuthorizationError, RateLimitError

        if isinstance(exc, (AuthenticationError, AuthorizationError)):
            self.metrics.auth_failures += 1
        elif isinstance(exc, RateLimitError):
            self.metrics.rate_limited += 1
        elif isinstance(exc, ValidationError):
            self.metrics.validation_failures += 1

    # ------------------------------------------------------------- OpenAI-style endpoints
    def chat_completions(self, access_token: str, body: dict):
        """``POST /v1/chat/completions`` — the OpenAI response dict, or a
        typed error envelope (never a raw exception)."""
        return (yield from self._openai_endpoint(access_token, body,
                                                 RequestKind.CHAT_COMPLETION))

    def completions(self, access_token: str, body: dict):
        """``POST /v1/completions``."""
        return (yield from self._openai_endpoint(access_token, body,
                                                 RequestKind.COMPLETION))

    def embeddings(self, access_token: str, body: dict):
        """``POST /v1/embeddings``."""
        return (yield from self._openai_endpoint(access_token, body,
                                                 RequestKind.EMBEDDING))

    def _openai_endpoint(self, access_token: str, body: dict, kind: RequestKind):
        try:
            request = self.build_request(body, kind)
            result = yield self.submit_request(access_token, request)
        except Exception as exc:  # noqa: BLE001 - every failure becomes an envelope
            # Typed errors map to their own envelope; anything else (e.g. a
            # task failure surfacing as RuntimeError) becomes internal_error.
            return error_envelope(exc)
        return result.to_openai_dict()

    def build_request(self, body: dict, kind: RequestKind) -> InferenceRequest:
        """Convert an OpenAI-style request body into a typed request."""
        model = self.validate_model(body.get("model"))
        if kind == RequestKind.CHAT_COMPLETION:
            messages = body.get("messages")
            if not messages:
                raise ValidationError("chat completion requires 'messages'")
            prompt_text = " ".join(str(m.get("content", "")) for m in messages)
        elif kind == RequestKind.COMPLETION:
            prompt_text = str(body.get("prompt", ""))
            if not prompt_text:
                raise ValidationError("completion requires 'prompt'")
        else:
            prompt_text = str(body.get("input", ""))
            if not prompt_text:
                raise ValidationError("embedding requires 'input'")
        max_tokens = int(body.get("max_tokens", self.config.default_max_tokens))
        if max_tokens <= 0 or max_tokens > self.config.max_allowed_output_tokens:
            raise ValidationError(
                f"max_tokens must be in (0, {self.config.max_allowed_output_tokens}]"
            )
        prompt_tokens = int(body.get("prompt_tokens_hint") or estimate_tokens(prompt_text))
        params = {
            k: body[k]
            for k in ("temperature", "top_p", "frequency_penalty", "presence_penalty", "seed")
            if k in body
        }
        return InferenceRequest(
            request_id=body.get("request_id") or self._ids.next("gw-req"),
            model=model,
            prompt_tokens=prompt_tokens,
            max_output_tokens=1 if kind == RequestKind.EMBEDDING else max_tokens,
            kind=kind,
            prompt_text=prompt_text,
            params=params,
            stream=bool(body.get("stream", False)),
        )

    # ------------------------------------------------------------- batches (§4.4)
    def create_batch(self, access_token: str, input_jsonl: str,
                     endpoint_id: Optional[str] = None):
        """``POST /v1/batches`` — validate the JSONL input and launch a batch job."""
        try:
            record = yield from self._create_batch(access_token, input_jsonl, endpoint_id)
        except Exception as exc:  # noqa: BLE001 - every failure becomes an envelope
            return error_envelope(exc)
        return record.to_dict()

    def _create_batch(self, access_token: str, input_jsonl: str,
                      endpoint_id: Optional[str]):
        info = yield from self.auth_layer.authenticate(access_token)
        requests = parse_batch_lines(input_jsonl, default_user=info.username)
        models = {r.model for r in requests}
        if len(models) != 1:
            raise ValidationError("All requests in a batch must target the same model")
        model = self.validate_model(next(iter(models)))
        self.auth_layer.authorize(info, f"model:{model}")
        for request in requests:
            request.model = model
            request.user = info.username

        if endpoint_id is None:
            endpoint = yield from self.route(model, tenant=info.username)
        else:
            endpoint = self.router.registry.get(endpoint_id).endpoint

        return self._launch_batch(info.username, model, endpoint, requests)

    def _launch_batch(self, user: str, model: str, endpoint, requests,
                      retried_from: Optional[str] = None) -> BatchRecord:
        """Insert a batch record and dispatch its compute task."""
        record = BatchRecord(
            batch_id=self._ids.next("batch"),
            user=user,
            model=model,
            endpoint=endpoint.endpoint_id,
            num_requests=len(requests),
            status="in_progress",
            created_at=self.env.now,
            requests=list(requests),
            retried_from=retried_from,
        )
        self.db.insert_batch(record)
        future = self.compute_client.submit(
            self.function_for(HANDLER_BATCH),
            endpoint.endpoint_id,
            {"model": model, "requests": list(requests)},
            submitter=user,
        )
        self.env.process(self._track_batch(record, future))
        return record

    def retry_batch(self, access_token: str, batch_id: str):
        """``POST /v1/batches/{id}/retry`` — resubmit only the requests that
        failed, as recorded in the batch's ``failure_reasons`` (§4.4).

        Returns the new batch resource, or a typed error envelope when the
        batch is unknown, still running, or has nothing to retry.
        """
        try:
            record = yield from self._retry_batch(access_token, batch_id)
        except Exception as exc:  # noqa: BLE001 - every failure becomes an envelope
            return error_envelope(exc)
        return record.to_dict()

    def _retry_batch(self, access_token: str, batch_id: str):
        info = yield from self.auth_layer.authenticate(access_token)
        original = self.db.get_batch(batch_id)
        if original is None:
            raise NotFoundError(f"Unknown batch id {batch_id}")
        if original.status not in ("completed", "failed"):
            raise ValidationError(
                f"Batch {batch_id} is still {original.status}; only finished "
                "batches can be retried"
            )
        if original.status == "failed":
            # The whole compute task failed: every request is retryable.
            requests = list(original.requests)
        else:
            failed_ids = set(original.failure_reasons)
            requests = [r for r in original.requests
                        if r.request_id in failed_ids]
        if not requests:
            raise ValidationError(
                f"Batch {batch_id} has no failed requests to retry"
            )
        model = original.model
        self.auth_layer.authorize(info, f"model:{model}")
        # Route afresh: the original endpoint may have left the federation.
        endpoint = yield from self.route(model, tenant=info.username)
        record = self._launch_batch(info.username, model, endpoint, requests,
                                    retried_from=batch_id)
        original.retry_batch_ids.append(record.batch_id)
        return record

    def _track_batch(self, record: BatchRecord, future):
        try:
            run_result = yield from self.compute_client.wait_future(future)
        except Exception as exc:  # noqa: BLE001
            record.status = "failed"
            record.error = str(exc)
            record.completed_at = self.env.now
            record.completed_requests = 0
            record.failed_requests = record.num_requests
            record.output_tokens = 0
            self.metrics.batch_failed(record.model, record.num_requests,
                                      reason=str(exc) or type(exc).__name__)
            return
        record.status = "completed"
        record.completed_at = self.env.now
        record.completed_requests = run_result.num_completed
        record.failed_requests = record.num_requests - run_result.num_completed
        record.output_tokens = run_result.total_output_tokens
        record.results = run_result.results
        # Partial failures: keep the per-request reason so ``GET /v1/batches``
        # can report which requests failed and why (typed envelopes), and the
        # dashboard can bucket the reasons.
        record.failure_reasons = {
            r.request_id: r.error or "unknown failure"
            for r in run_result.results
            if not r.success
        }
        if not record.failure_reasons:
            # Requests are retained only for retry; a fully clean batch has
            # nothing to resubmit, so drop them instead of growing the
            # database with every batch ever run.
            record.requests = []
        self.metrics.batch_completed(
            record.model,
            record.num_requests,
            record.output_tokens,
            failed_requests=record.failed_requests,
            failure_reasons=record.failure_reasons,
        )
        user = self.db.upsert_user(record.user)
        user["tokens"] += record.output_tokens

    def get_batch(self, access_token: str, batch_id: str):
        """``GET /v1/batches/{id}``."""
        try:
            yield from self.auth_layer.authenticate(access_token)
            record = self.db.get_batch(batch_id)
            if record is None:
                raise NotFoundError(f"Unknown batch id {batch_id}")
        except Exception as exc:  # noqa: BLE001 - every failure becomes an envelope
            return error_envelope(exc)
        return record.to_dict()

    # ------------------------------------------------------------- informational endpoints
    def list_models(self) -> dict:
        """``GET /v1/models`` — models hosted anywhere in the federation."""
        models = self.router.registry.hosted_models()
        return {
            "object": "list",
            "data": [{"id": m, "object": "model"} for m in sorted(models)],
        }

    def jobs(self) -> List[dict]:
        """``GET /jobs`` — model/instance states across the federation (§4.3)."""
        statuses = []
        for entry in self.router.registry.entries:
            for status in entry.endpoint.model_status():
                statuses.append(status.to_dict())
        return statuses

    def dashboard(self) -> dict:
        """``GET /metrics`` — real-time monitoring summary (§3.1.1)."""
        extra = {
            "database": self.db.usage_summary(),
            "auth_cache": {
                "hits": self.auth_layer.cache_hits,
                "misses": self.auth_layer.cache_misses,
            },
            "queued_at_relay": self.compute_client.relay.queued_tasks,
            "pipeline": self.pipeline.stage_names(),
            # Cumulative per-endpoint/per-rule routing counters: the bounded
            # decision log evicts, these never do.
            "routing": self.router.summary(),
        }
        if self.response_cache is not None:
            extra["response_cache"] = {
                "hits": self.response_cache.hits,
                "misses": self.response_cache.misses,
            }
        if self.observability is not None:
            extra["observability"] = self.observability.summary()
        return self.metrics.dashboard(extra=extra)

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — Prometheus text exposition of the gateway's
        metric registry (requires the observability middleware)."""
        if self.observability is None:
            raise NotFoundError("Observability is not enabled on this gateway")
        return self.observability.metrics_text()

    def get_trace(self, trace_id: str) -> dict:
        """``GET /v1/traces/{id}`` — one retained distributed trace."""
        if self.observability is None:
            raise NotFoundError("Observability is not enabled on this gateway")
        trace = self.observability.trace(trace_id)
        if trace is None:
            raise NotFoundError(f"Unknown or unretained trace id: {trace_id}")
        return trace
