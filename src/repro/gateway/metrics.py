"""Gateway-side metrics layer and dashboard (§3.1.1).

"The metrics layer provides real-time monitoring of the compute resources
and queue status. Performance and summary metrics are also exposed through a
web dashboard."
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim import Environment

__all__ = ["ModelUsage", "GatewayMetrics"]


@dataclass
class ModelUsage:
    """Aggregated per-model counters."""

    model: str
    requests: int = 0
    completed: int = 0
    failed: int = 0
    prompt_tokens: int = 0
    output_tokens: int = 0
    total_latency_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "mean_latency_s": round(self.mean_latency_s, 3),
        }


class GatewayMetrics:
    """In-process counters surfaced by the gateway's dashboard endpoint."""

    def __init__(self, env: Environment):
        self.env = env
        self.started_at = env.now
        self.per_model: Dict[str, ModelUsage] = {}
        self.in_flight = 0
        self.peak_in_flight = 0
        self.auth_failures = 0
        self.validation_failures = 0
        self.rate_limited = 0
        self.batches_completed = 0
        self.batches_failed = 0

    def _usage(self, model: str) -> ModelUsage:
        if model not in self.per_model:
            self.per_model[model] = ModelUsage(model=model)
        return self.per_model[model]

    # -- lifecycle hooks ---------------------------------------------------------
    def request_started(self, model: str, prompt_tokens: int) -> None:
        usage = self._usage(model)
        usage.requests += 1
        usage.prompt_tokens += prompt_tokens
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def request_completed(self, model: str, output_tokens: int, latency_s: float) -> None:
        usage = self._usage(model)
        usage.completed += 1
        usage.output_tokens += output_tokens
        usage.total_latency_s += latency_s
        self.in_flight = max(0, self.in_flight - 1)

    def request_failed(self, model: str) -> None:
        self._usage(model).failed += 1
        self.in_flight = max(0, self.in_flight - 1)

    # -- batch lifecycle hooks -----------------------------------------------------
    # Batches are accounted separately from the interactive per-model
    # counters (which track gateway requests): the dashboard surfaces them
    # as ``batches_completed`` / ``batches_failed``.
    def batch_completed(self, model: str, num_requests: int, output_tokens: int) -> None:
        """Count a finished batch job."""
        self.batches_completed += 1

    def batch_failed(self, model: str, num_requests: int) -> None:
        """Count a failed batch job (every request in it failed)."""
        self.batches_failed += 1

    # -- aggregates --------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(u.requests for u in self.per_model.values())

    @property
    def total_completed(self) -> int:
        return sum(u.completed for u in self.per_model.values())

    @property
    def total_output_tokens(self) -> int:
        return sum(u.output_tokens for u in self.per_model.values())

    def dashboard(self, extra: Optional[dict] = None) -> dict:
        """Summary dict in the spirit of the paper's monitoring dashboard."""
        uptime = self.env.now - self.started_at
        data = {
            "uptime_s": uptime,
            "total_requests": self.total_requests,
            "total_completed": self.total_completed,
            "total_output_tokens": self.total_output_tokens,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "auth_failures": self.auth_failures,
            "validation_failures": self.validation_failures,
            "rate_limited": self.rate_limited,
            "batches_completed": self.batches_completed,
            "batches_failed": self.batches_failed,
            "models": [u.to_dict() for u in sorted(self.per_model.values(),
                                                   key=lambda u: u.model)],
        }
        if extra:
            data.update(extra)
        return data
