"""Gateway-side metrics layer and dashboard (§3.1.1).

"The metrics layer provides real-time monitoring of the compute resources
and queue status. Performance and summary metrics are also exposed through a
web dashboard."

Besides the cumulative dashboard counters, the layer keeps *rolling* windows
of recently observed per-model timings (end-to-end latency for every
request; gateway-observed TTFT and inter-token latencies for streaming
requests).  These medians feed the autoscaling control plane through
:class:`repro.autoscale.MetricsFeed` — the gateway is the loop's
latency sensor.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from statistics import median
from typing import Deque, Dict, List, Optional

from ..metrics.summary import percentile
from ..sim import Environment

__all__ = ["ModelUsage", "GatewayMetrics"]


@dataclass
class ModelUsage:
    """Aggregated per-model counters."""

    model: str
    requests: int = 0
    completed: int = 0
    failed: int = 0
    prompt_tokens: int = 0
    output_tokens: int = 0
    total_latency_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "mean_latency_s": round(self.mean_latency_s, 3),
        }


class _RecentTimings:
    """Bounded windows of the most recent per-model timing observations."""

    __slots__ = ("latencies", "ttfts", "itls")

    def __init__(self, window: int):
        self.latencies: Deque[float] = deque(maxlen=window)
        self.ttfts: Deque[float] = deque(maxlen=window)
        self.itls: Deque[float] = deque(maxlen=window)


class GatewayMetrics:
    """In-process counters surfaced by the gateway's dashboard endpoint."""

    def __init__(self, env: Environment, recent_window: int = 256):
        self.env = env
        self.started_at = env.now
        self.per_model: Dict[str, ModelUsage] = {}
        self.in_flight = 0
        self.peak_in_flight = 0
        self.auth_failures = 0
        self.validation_failures = 0
        self.rate_limited = 0
        self.batches_completed = 0
        self.batches_failed = 0
        self.batch_requests_completed = 0
        self.batch_requests_failed = 0
        #: Per-request batch failure reasons, bucketed for the dashboard.
        self.batch_failure_reasons: Dict[str, int] = defaultdict(int)
        self._recent_window = recent_window
        #: Rolling windows keyed by (model, endpoint); the ``None`` endpoint
        #: is the fleet-wide window the autoscale feed samples, per-endpoint
        #: windows feed the placement plane's pool signals.
        self._recent: Dict[tuple, _RecentTimings] = {}

    def _usage(self, model: str) -> ModelUsage:
        if model not in self.per_model:
            self.per_model[model] = ModelUsage(model=model)
        return self.per_model[model]

    def _timings(self, model: str, endpoint: Optional[str] = None) -> _RecentTimings:
        key = (model, endpoint)
        if key not in self._recent:
            self._recent[key] = _RecentTimings(self._recent_window)
        return self._recent[key]

    # -- lifecycle hooks ---------------------------------------------------------
    def request_started(self, model: str, prompt_tokens: int) -> None:
        usage = self._usage(model)
        usage.requests += 1
        usage.prompt_tokens += prompt_tokens
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def request_completed(self, model: str, output_tokens: int, latency_s: float,
                          endpoint: Optional[str] = None) -> None:
        usage = self._usage(model)
        usage.completed += 1
        usage.output_tokens += output_tokens
        usage.total_latency_s += latency_s
        self._timings(model).latencies.append(latency_s)
        if endpoint is not None:
            self._timings(model, endpoint).latencies.append(latency_s)
        self.in_flight = max(0, self.in_flight - 1)

    def request_failed(self, model: str) -> None:
        self._usage(model).failed += 1
        self.in_flight = max(0, self.in_flight - 1)

    def record_stream_timing(self, model: str, ttft_s: float,
                             itl_values: Optional[List[float]] = None,
                             endpoint: Optional[str] = None) -> None:
        """Record gateway-observed streaming timings (dispatch stage hook)."""
        for timings in ([self._timings(model)]
                        + ([self._timings(model, endpoint)] if endpoint else [])):
            timings.ttfts.append(ttft_s)
            if itl_values:
                timings.itls.extend(itl_values)

    def recent_timings(self, model: str,
                       endpoint: Optional[str] = None) -> Optional[dict]:
        """Rolling medians for ``model`` (the autoscale feed's sensor read).

        With ``endpoint`` the medians cover only requests served by that
        endpoint — the placement plane's per-pool latency signal.  Returns
        ``None`` when nothing has been observed yet; individual keys are
        ``None`` until their signal exists (e.g. no streaming traffic).
        """
        timings = self._recent.get((model, endpoint))
        if timings is None:
            return None
        out = {
            "latency_p50_s": median(timings.latencies) if timings.latencies else None,
            "ttft_p50_s": median(timings.ttfts) if timings.ttfts else None,
            "itl_p50_s": median(timings.itls) if timings.itls else None,
        }
        # Tail percentiles over the same rolling windows.  p50 stays the
        # exact median (the autoscale feed's existing sensor contract); the
        # tails use the shared linear-interpolation percentile.
        for key, window in (("latency", timings.latencies),
                            ("ttft", timings.ttfts), ("itl", timings.itls)):
            values = list(window)
            for q in (95, 99):
                out[f"{key}_p{q}_s"] = percentile(values, q) if values else None
        return out

    # -- batch lifecycle hooks -----------------------------------------------------
    # Batches are accounted separately from the interactive per-model
    # counters (which track gateway requests): the dashboard surfaces them
    # as ``batches_completed`` / ``batches_failed`` plus per-request
    # completion/failure counts and bucketed failure reasons.
    def batch_completed(self, model: str, num_requests: int, output_tokens: int,
                        failed_requests: int = 0,
                        failure_reasons: Optional[Dict[str, str]] = None) -> None:
        """Count a finished batch job (possibly with partial failures)."""
        self.batches_completed += 1
        self.batch_requests_completed += max(0, num_requests - failed_requests)
        self.batch_requests_failed += failed_requests
        for reason in (failure_reasons or {}).values():
            self.batch_failure_reasons[reason] += 1

    def batch_failed(self, model: str, num_requests: int,
                     reason: Optional[str] = None) -> None:
        """Count a failed batch job (every request in it failed)."""
        self.batches_failed += 1
        self.batch_requests_failed += num_requests
        if reason:
            # Reason buckets are per *request* (matching batch_completed), so
            # they always reconcile with ``batch_requests_failed``.
            self.batch_failure_reasons[reason] += num_requests

    # -- aggregates --------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return sum(u.requests for u in self.per_model.values())

    @property
    def total_completed(self) -> int:
        return sum(u.completed for u in self.per_model.values())

    @property
    def total_output_tokens(self) -> int:
        return sum(u.output_tokens for u in self.per_model.values())

    def dashboard(self, extra: Optional[dict] = None) -> dict:
        """Summary dict in the spirit of the paper's monitoring dashboard."""
        uptime = self.env.now - self.started_at
        data = {
            "uptime_s": uptime,
            "total_requests": self.total_requests,
            "total_completed": self.total_completed,
            "total_output_tokens": self.total_output_tokens,
            "in_flight": self.in_flight,
            "peak_in_flight": self.peak_in_flight,
            "auth_failures": self.auth_failures,
            "validation_failures": self.validation_failures,
            "rate_limited": self.rate_limited,
            "batches_completed": self.batches_completed,
            "batches_failed": self.batches_failed,
            "batch_requests_completed": self.batch_requests_completed,
            "batch_requests_failed": self.batch_requests_failed,
            "batch_failure_reasons": dict(self.batch_failure_reasons),
            "models": [u.to_dict() for u in sorted(self.per_model.values(),
                                                   key=lambda u: u.model)],
        }
        if extra:
            data.update(extra)
        return data
