"""Typed per-request state shared by the gateway middleware pipeline.

A :class:`RequestContext` is created once per inbound request and threaded
through every middleware stage (see :mod:`repro.gateway.pipeline`).  Each
stage reads the fields earlier stages populated and records its own outputs,
so the stages stay decoupled from one another: swapping the rate limiter or
inserting an admission-control stage never touches the other stages.

:class:`GatewayStream` is the client-facing handle of a streaming request —
an egress :class:`~repro.serving.StreamChannel` the dispatch stage forwards
engine token events into, plus the final :class:`~repro.serving.InferenceResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..auth import TokenInfo
from ..serving import InferenceRequest, InferenceResult, StreamChannel, StreamEvent
from ..sim import Environment, Event
from .database import RequestLogEntry
from .responses import error_envelope

__all__ = ["RequestContext", "GatewayStream"]


class GatewayStream:
    """Handle for one streaming request: an event channel plus the result.

    The gateway publishes :class:`~repro.serving.StreamEvent` items into
    :attr:`channel` as it observes them (``token`` events while the engine
    generates, one terminal ``done`` or ``error`` event) and then closes the
    channel.  ``done`` resolves with the final result for callers that also
    want the non-streaming view.
    """

    def __init__(self, env: Environment, request: Optional[InferenceRequest] = None):
        self.env = env
        self.request = request
        self.channel = StreamChannel(env)
        self.done: Event = env.event()
        self.result: Optional[InferenceResult] = None

    def deliver(self, event: StreamEvent) -> None:
        self.channel.publish(event)

    def finish(self, result: InferenceResult) -> None:
        """Publish the terminal ``done`` event and close the channel."""
        self.result = result
        self.channel.publish(
            StreamEvent(
                kind="done",
                index=result.output_tokens,
                time=self.env.now,
                finish_reason="stop" if result.success else "error",
                result=result,
            )
        )
        self.channel.close()

    def fail(self, exc: BaseException) -> None:
        """Publish the terminal ``error`` event (typed envelope) and close."""
        self.channel.publish(
            StreamEvent(
                kind="error",
                time=self.env.now,
                error=error_envelope(exc)["error"],
                exception=exc,
            )
        )
        self.channel.close()


@dataclass
class RequestContext:
    """Everything the pipeline knows about one in-flight request."""

    access_token: str
    request: InferenceRequest
    #: Simulation time the request entered the pipeline.
    started_at: float = 0.0

    # -- populated by the stages as the request progresses -------------------
    #: Canonical catalog name (ValidationMiddleware).
    model_name: str = ""
    #: Sync-legacy worker slot held for the whole request (ValidationMiddleware).
    sync_slot: Any = None
    #: Introspected identity (AuthMiddleware).
    token_info: Optional[TokenInfo] = None
    #: Response-cache key, when cacheable (ResponseCacheMiddleware).
    cache_key: Optional[str] = None
    #: Whether the response was served from the cache.
    cache_hit: bool = False
    #: Request-log row (AccountingMiddleware).
    log_entry: Optional[RequestLogEntry] = None
    #: Selected federated endpoint (RoutingMiddleware).
    endpoint: Any = None
    #: Final result (DispatchMiddleware or ResponseCacheMiddleware).
    result: Optional[InferenceResult] = None

    # -- streaming ------------------------------------------------------------
    #: Client-facing stream handle (set for ``submit_stream`` callers).
    egress: Optional[GatewayStream] = None
    #: Gateway-observed arrival time of every token event (DispatchMiddleware).
    gateway_token_times: List[float] = field(default_factory=list)

    # -- observability ---------------------------------------------------------
    #: Names of the middleware stages entered, in order.
    trace: List[str] = field(default_factory=list)
    #: Span-recording :class:`~repro.obs.trace.TraceContext`, when the
    #: deployment runs with the observability stage (None otherwise).
    trace_context: Any = None
    #: Free-form scratch space for custom middlewares.
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def streaming(self) -> bool:
        return bool(self.request.stream)
