"""In-memory stand-in for the gateway's PostgreSQL database.

The real gateway logs every user activity, stores batch jobs and the
federated endpoint configuration in PostgreSQL (§3.1).  The reproduction
keeps the same table semantics in memory with simple query helpers so the
metrics dashboard, the ``/jobs`` endpoint and the usage summaries behave the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RequestLogEntry", "BatchRecord", "GatewayDatabase"]


@dataclass
class RequestLogEntry:
    """One row of the request log."""

    request_id: str
    user: str
    model: str
    endpoint: str
    kind: str
    submitted_at: float
    completed_at: Optional[float] = None
    prompt_tokens: int = 0
    output_tokens: int = 0
    status: str = "pending"
    error: Optional[str] = None

    @property
    def latency_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class BatchRecord:
    """One row of the batches table (the ``/v1/batches`` resource)."""

    batch_id: str
    user: str
    model: str
    endpoint: str
    num_requests: int
    status: str = "validating"
    created_at: float = 0.0
    completed_at: Optional[float] = None
    completed_requests: int = 0
    failed_requests: int = 0
    output_tokens: int = 0
    error: Optional[str] = None
    #: Per-request failure reasons (request_id → reason string) for batches
    #: that completed with partial failures.
    failure_reasons: Dict[str, str] = field(default_factory=dict)
    results: List = field(default_factory=list)
    #: Original submitted requests, retained so ``POST /v1/batches/{id}/retry``
    #: can resubmit exactly the failed ones.
    requests: List = field(default_factory=list)
    #: Provenance: the batch this one retries, and the retries of this one.
    retried_from: Optional[str] = None
    retry_batch_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        from .responses import envelope_for_reason

        errors = None
        if self.failure_reasons:
            errors = {
                "object": "list",
                "data": [
                    {"request_id": rid, "error": envelope_for_reason(reason)["error"]}
                    for rid, reason in sorted(self.failure_reasons.items())
                ],
            }
        return {
            "id": self.batch_id,
            "object": "batch",
            "model": self.model,
            "endpoint": self.endpoint,
            "status": self.status,
            "created_at": self.created_at,
            "completed_at": self.completed_at,
            "request_counts": {
                "total": self.num_requests,
                "completed": self.completed_requests,
                "failed": self.failed_requests,
            },
            "output_tokens": self.output_tokens,
            "error": self.error,
            "errors": errors,
            "retried_from": self.retried_from,
            "retry_batch_ids": list(self.retry_batch_ids),
        }


class GatewayDatabase:
    """Tables: users, request log, batches."""

    def __init__(self):
        self.users: Dict[str, dict] = {}
        self.request_log: List[RequestLogEntry] = []
        self.batches: Dict[str, BatchRecord] = {}

    # -- users -----------------------------------------------------------------
    def upsert_user(self, username: str) -> dict:
        record = self.users.setdefault(
            username, {"username": username, "requests": 0, "tokens": 0}
        )
        return record

    @property
    def user_count(self) -> int:
        return len(self.users)

    # -- request log ------------------------------------------------------------
    def log_request(self, entry: RequestLogEntry) -> None:
        self.request_log.append(entry)
        user = self.upsert_user(entry.user)
        user["requests"] += 1

    def complete_request(self, entry: RequestLogEntry, output_tokens: int,
                         completed_at: float, status: str = "completed",
                         error: Optional[str] = None) -> None:
        entry.output_tokens = output_tokens
        entry.completed_at = completed_at
        entry.status = status
        entry.error = error
        self.users[entry.user]["tokens"] += output_tokens

    def requests_for_user(self, username: str) -> List[RequestLogEntry]:
        return [e for e in self.request_log if e.user == username]

    def requests_for_model(self, model: str) -> List[RequestLogEntry]:
        return [e for e in self.request_log if e.model == model]

    @property
    def total_requests(self) -> int:
        return len(self.request_log)

    @property
    def total_output_tokens(self) -> int:
        return sum(e.output_tokens for e in self.request_log)

    # -- batches ------------------------------------------------------------------
    def insert_batch(self, record: BatchRecord) -> None:
        self.batches[record.batch_id] = record

    def get_batch(self, batch_id: str) -> Optional[BatchRecord]:
        return self.batches.get(batch_id)

    def usage_summary(self) -> dict:
        """Aggregate usage numbers (the paper quotes 8.7M requests / 76 users /
        10B tokens for its 10-month deployment)."""
        return {
            "total_requests": self.total_requests,
            "total_users": self.user_count,
            "total_output_tokens": self.total_output_tokens,
            "total_batches": len(self.batches),
        }
