"""Per-user rate limiting (part of the gateway's protection layer, §3.1.1)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from ..common import RateLimitError

__all__ = ["SlidingWindowRateLimiter"]


class SlidingWindowRateLimiter:
    """Sliding-window request limiter keyed by username."""

    def __init__(self, max_requests: int, window_s: float):
        if max_requests <= 0:
            raise ValueError("max_requests must be > 0")
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        self.max_requests = max_requests
        self.window_s = window_s
        self._events: Dict[str, Deque[float]] = {}
        self.rejections = 0

    def check(self, user: str, now: float) -> None:
        """Record one request for ``user``; raise :class:`RateLimitError` if over."""
        window = self._events.setdefault(user, deque())
        cutoff = now - self.window_s
        while window and window[0] <= cutoff:
            window.popleft()
        if len(window) >= self.max_requests:
            self.rejections += 1
            raise RateLimitError(
                f"User {user} exceeded {self.max_requests} requests per {self.window_s:.0f}s"
            )
        window.append(now)

    def current_usage(self, user: str, now: float) -> int:
        window = self._events.get(user, deque())
        cutoff = now - self.window_s
        return sum(1 for t in window if t > cutoff)
