"""Gateway configuration, including the three optimisation toggles of §5.3.1."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["ServerMode", "RetrievalMode", "GatewayConfig"]


class ServerMode(str, enum.Enum):
    """How the API application handles concurrency.

    ``ASYNC`` models the Django-Ninja + Gunicorn/Uvicorn deployment: workers
    only hold CPU while parsing/validating/serialising, so thousands of
    requests can be in flight.  ``SYNC_LEGACY`` models the original
    synchronous Django REST deployment, where a worker blocks for the whole
    request and "only nine requests could be processed at a time"
    (Optimization 3).
    """

    ASYNC = "async"
    SYNC_LEGACY = "sync-legacy"


class RetrievalMode(str, enum.Enum):
    """How results are retrieved from the compute layer (Optimization 1)."""

    FUTURES = "futures"
    POLLING = "polling"


@dataclass
class GatewayConfig:
    """Behavioural and timing parameters of the Inference Gateway."""

    # -- server concurrency model (Optimization 3) ---------------------------
    server_mode: ServerMode = ServerMode.ASYNC
    #: Gunicorn sizing from §5.2.2: cpu_count()*2 + 1 workers, 4 threads each.
    cpu_count: int = 32
    threads_per_worker: int = 4
    #: Worker count for the legacy synchronous deployment.
    sync_workers: int = 9

    # -- per-request processing costs ------------------------------------------
    #: CPU time to parse/validate/convert a request (paid on a worker slot).
    ingress_processing_s: float = 0.05
    #: CPU time to serialise/return the response.
    egress_processing_s: float = 0.05
    #: Database logging cost per request.
    db_write_s: float = 0.005

    # -- authentication (Optimization 2) -------------------------------------------
    cache_token_introspection: bool = True
    token_cache_ttl_s: float = 600.0
    #: Extra per-request cost when introspection is NOT cached: a fresh
    #: introspection round-trip plus re-establishing the compute-endpoint
    #: connection ("eliminated 2 s from the latency of each request").
    uncached_connection_setup_s: float = 1.5

    # -- result retrieval (Optimization 1) --------------------------------------------
    retrieval_mode: RetrievalMode = RetrievalMode.FUTURES

    # -- protection ---------------------------------------------------------------------
    #: Per-user request rate limit (requests per window); generous default.
    rate_limit_requests: int = 100000
    rate_limit_window_s: float = 60.0
    #: Response cache for identical prompts (off by default).
    enable_response_cache: bool = False
    response_cache_ttl_s: float = 300.0

    # -- routing -----------------------------------------------------------------------------
    #: Cache a routing decision per model for this long (avoids re-querying
    #: facility status for every request in a burst).
    routing_cache_ttl_s: float = 30.0

    # -- streaming (API v2) -----------------------------------------------------------------
    #: Per-chunk delivery latency of a stream event travelling engine → relay
    #: → gateway over the open SSE connection.  Much smaller than the full
    #: result-retrieval path, which is why streaming TTFT ≪ end-to-end latency.
    stream_chunk_latency_s: float = 0.05

    # -- middleware pipeline (API v2) --------------------------------------------------------
    #: Ordered factories (``api -> Middleware``) building the request
    #: pipeline.  ``None`` uses the stock chain from
    #: :func:`repro.gateway.pipeline.default_middleware_factories`; deployments
    #: can insert/replace/remove stages here without touching
    #: :class:`~repro.gateway.app.InferenceGatewayAPI`.
    middleware_factories: Optional[List[Callable]] = None

    # -- defaults for request validation ----------------------------------------------------------
    max_allowed_output_tokens: int = 8192
    default_max_tokens: int = 256

    @property
    def async_worker_slots(self) -> int:
        """Concurrent in-flight requests the async deployment can process."""
        return (self.cpu_count * 2 + 1) * self.threads_per_worker

    def worker_slots(self) -> int:
        if self.server_mode == ServerMode.ASYNC:
            return self.async_worker_slots
        return self.sync_workers
