"""Response cache (part of the gateway's protection layer, §3.1.1)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["ResponseCache"]


@dataclass
class _Entry:
    value: Any
    stored_at: float


class ResponseCache:
    """TTL cache keyed by (model, prompt, sampling parameters).

    Disabled by default in the deployment config: chat completions are
    usually unique, but repeated identical requests (health checks, retries,
    eval sweeps re-running the same prompt) short-circuit here.
    """

    def __init__(self, ttl_s: float = 300.0, max_entries: int = 10000):
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._entries: Dict[str, _Entry] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(model: str, prompt_text: str, max_tokens: int, params: Optional[dict] = None) -> str:
        material = f"{model}|{prompt_text}|{max_tokens}|{sorted((params or {}).items())}"
        return hashlib.sha256(material.encode()).hexdigest()

    def get(self, key: str, now: float) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None or now - entry.stored_at > self.ttl_s:
            if entry is not None:
                self._entries.pop(key, None)
            self.misses += 1
            return None
        self.hits += 1
        return entry.value

    def put(self, key: str, value: Any, now: float) -> None:
        if len(self._entries) >= self.max_entries:
            # Drop the oldest entry (simple FIFO eviction).
            oldest = min(self._entries, key=lambda k: self._entries[k].stored_at)
            self._entries.pop(oldest, None)
        self._entries[key] = _Entry(value=value, stored_at=now)

    def __len__(self) -> int:
        return len(self._entries)
