"""Composable middleware pipeline — the Gateway API v2 request path.

The monolithic ``InferenceGatewayAPI._handle`` generator of API v1 is
decomposed into seven single-purpose stages composed by
:class:`GatewayPipeline`::

    request ──▶ Validation ─▶ Auth ─▶ RateLimit ─▶ ResponseCache
                    │                                   │ (hit: short-circuit)
                    ▼                                   ▼
               Accounting ─▶ Routing ─▶ Dispatch ──▶ result
                    ▲                       │
                    └── db/metrics ◀────────┘ (post-order unwinding)

Each stage is a :class:`Middleware` whose ``process(ctx, call_next)`` is a
simulation generator: it may read/write the :class:`RequestContext`, spend
simulated time, raise a typed error (mapped to an envelope at the edge), or
*not* call ``call_next`` to short-circuit the rest of the chain (response
cache hits).  Code after ``yield from call_next(ctx)`` runs while the chain
unwinds, which is how accounting observes the final result.

Deployments customise the chain without touching ``InferenceGatewayAPI``:
``GatewayConfig.middleware_factories`` holds a list of callables that take
the gateway application and return a middleware — start from
:func:`default_middleware_factories` and insert/replace/remove stages.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..faas import HANDLER_CHAT, HANDLER_EMBEDDING
from ..serving import RequestKind, StreamChannel
from .cache import ResponseCache
from .config import RetrievalMode, ServerMode
from .context import RequestContext
from .database import RequestLogEntry

__all__ = [
    "Middleware",
    "GatewayPipeline",
    "ValidationMiddleware",
    "AuthMiddleware",
    "RateLimitMiddleware",
    "ResponseCacheMiddleware",
    "AccountingMiddleware",
    "RoutingMiddleware",
    "DispatchMiddleware",
    "default_middleware_factories",
    "MiddlewareFactory",
]

#: A factory takes the gateway application and returns a middleware instance.
MiddlewareFactory = Callable[[object], "Middleware"]


class Middleware:
    """One stage of the gateway pipeline.

    Subclasses override :meth:`process`; the base implementation is a
    transparent pass-through.  ``call_next(ctx)`` returns the generator of
    the remaining chain — not calling it short-circuits the pipeline (the
    context must then carry a ``result``).
    """

    #: Stable stage name recorded in ``ctx.trace`` (observability/tests).
    name = "middleware"

    def __init__(self, api):
        self.api = api

    def process(self, ctx: RequestContext, call_next):
        yield from call_next(ctx)


class GatewayPipeline:
    """Runs a request context through an ordered middleware chain."""

    def __init__(self, middlewares: Sequence[Middleware]):
        self.middlewares: List[Middleware] = list(middlewares)

    def run(self, ctx: RequestContext):
        """Simulation process: drive ``ctx`` through every stage."""
        yield from self._call(0, ctx)

    def _call(self, index: int, ctx: RequestContext):
        if index >= len(self.middlewares):
            return
        middleware = self.middlewares[index]
        ctx.trace.append(middleware.name)

        def call_next(c: RequestContext):
            return self._call(index + 1, c)

        tctx = ctx.trace_context
        if tctx is None:
            yield from middleware.process(ctx, call_next)
            return
        # Span per stage.  Stages nest (each runs the rest of the chain from
        # inside its own process), so the previous stage's span is this one's
        # parent; `current` is restored on unwind so post-order code (cache
        # fill, accounting) is attributed to its own stage.
        prev = tctx.current
        span = tctx.start_span(f"gateway.stage.{middleware.name}",
                               parent=prev, layer="gateway")
        tctx.current = span
        try:
            yield from middleware.process(ctx, call_next)
        except Exception as exc:
            span.status = f"error:{type(exc).__name__}"
            raise
        finally:
            tctx.end_span(span)
            tctx.current = prev

    def stage_names(self) -> List[str]:
        return [m.name for m in self.middlewares]


# --------------------------------------------------------------------------- stages
class ValidationMiddleware(Middleware):
    """Resolve the model against the catalog and pay the ingress CPU cost.

    In sync-legacy server mode this stage also acquires the worker slot that
    stays held for the whole request (Optimization 3's "only nine requests
    at a time" behaviour); the gateway releases it when the pipeline ends.
    """

    name = "validation"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        cfg = api.config
        ctx.model_name = api.validate_model(ctx.request.model)
        ctx.request.model = ctx.model_name
        if ctx.streaming and ctx.request.kind == RequestKind.EMBEDDING:
            from ..common import ValidationError

            raise ValidationError("stream=True is not supported for embeddings")
        if cfg.server_mode == ServerMode.SYNC_LEGACY:
            ctx.sync_slot = api.workers.request()
            yield ctx.sync_slot
        # Ingress CPU work (parse/validate/convert).
        if cfg.server_mode == ServerMode.ASYNC:
            yield from api.worker_slot(cfg.ingress_processing_s)
        else:
            yield api.env.timeout(cfg.ingress_processing_s)
        yield from call_next(ctx)


class AuthMiddleware(Middleware):
    """Token introspection (cached, single-flight) + per-model policy check."""

    name = "auth"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        info = yield from api.auth_layer.authenticate(ctx.access_token)
        api.auth_layer.authorize(info, f"model:{ctx.model_name}")
        ctx.token_info = info
        ctx.request.user = info.username
        yield from call_next(ctx)


class RateLimitMiddleware(Middleware):
    """Per-user sliding-window rate limiting."""

    name = "rate-limit"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        api.rate_limiter.check(ctx.request.user, api.env.now)
        yield from call_next(ctx)


class ResponseCacheMiddleware(Middleware):
    """Serve identical prompts from the response cache; fill it on the way out.

    A cache hit records its own metrics and returns without calling the rest
    of the chain, so accounting/routing/dispatch never run.  Streaming
    requests bypass the cache: their value is per-token timing, which a
    cached body cannot reproduce.
    """

    name = "response-cache"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        cache = api.response_cache
        request = ctx.request
        if (
            cache is not None
            and not ctx.streaming
            and request.kind != RequestKind.EMBEDDING
        ):
            ctx.cache_key = ResponseCache.key_for(
                ctx.model_name, request.prompt_text, request.max_output_tokens,
                request.params,
            )
            cached = cache.get(ctx.cache_key, api.env.now)
            if cached is not None:
                api.metrics.request_started(ctx.model_name, request.prompt_tokens)
                api.metrics.request_completed(ctx.model_name, cached.output_tokens, 0.0)
                ctx.cache_hit = True
                ctx.result = cached
                return
        yield from call_next(ctx)
        if ctx.cache_key is not None and ctx.result is not None and ctx.result.success:
            cache.put(ctx.cache_key, ctx.result, api.env.now)


class AccountingMiddleware(Middleware):
    """Metrics + request-log bookkeeping around the downstream stages."""

    name = "accounting"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        request = ctx.request
        api.metrics.request_started(ctx.model_name, request.prompt_tokens)
        entry = RequestLogEntry(
            request_id=request.request_id,
            user=request.user,
            model=ctx.model_name,
            endpoint="",
            kind=request.kind.value,
            submitted_at=api.env.now,
            prompt_tokens=request.prompt_tokens,
        )
        ctx.log_entry = entry
        if api.config.db_write_s > 0:
            yield api.env.timeout(api.config.db_write_s)
        api.db.log_request(entry)
        try:
            yield from call_next(ctx)
        except Exception as exc:
            # Downstream failure (routing/dispatch): settle the books so the
            # dashboard's in-flight gauge and per-model failure counts stay
            # truthful, then let the edge map the exception to an envelope.
            api.db.complete_request(entry, 0, api.env.now, status="failed",
                                    error=str(exc) or type(exc).__name__)
            api.metrics.request_failed(ctx.model_name)
            raise
        result = ctx.result
        latency = api.env.now - entry.submitted_at
        api.db.complete_request(
            entry, result.output_tokens, api.env.now,
            status="completed" if result.success else "failed",
            error=result.error,
        )
        if result.success:
            api.metrics.request_completed(
                ctx.model_name, result.output_tokens, latency,
                endpoint=ctx.endpoint.endpoint_id if ctx.endpoint else None,
            )
        else:
            api.metrics.request_failed(ctx.model_name)


class RoutingMiddleware(Middleware):
    """Pick a federated endpoint for the model (short-lived routing cache)."""

    name = "routing"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        endpoint = yield from api.route(ctx.model_name, tenant=ctx.request.user)
        ctx.endpoint = endpoint
        if ctx.log_entry is not None:
            ctx.log_entry.endpoint = endpoint.endpoint_id
        tctx = ctx.trace_context
        if tctx is not None and tctx.current is not None:
            tctx.current.attrs.update(
                endpoint=endpoint.endpoint_id,
                policy=type(api.router).__name__,
            )
        yield from call_next(ctx)


class DispatchMiddleware(Middleware):
    """Convert the request into a compute task and retrieve the result.

    For streaming requests an ingress :class:`~repro.serving.StreamChannel`
    travels with the task down to the engine; a forwarder process consumes
    it, timestamps every token at the gateway (the gateway-observed
    TTFT/ITL) and relays the events to the caller's egress channel.
    """

    name = "dispatch"

    def process(self, ctx: RequestContext, call_next):
        api = self.api
        cfg = api.config
        request = ctx.request
        handler = (
            HANDLER_EMBEDDING if request.kind == RequestKind.EMBEDDING else HANDLER_CHAT
        )
        ingress = None
        forwarder = None
        if ctx.streaming:
            ingress = StreamChannel(api.env, delivery_latency_s=cfg.stream_chunk_latency_s)
            forwarder = api.env.process(self._forward_stream(ctx, ingress))
        future = api.compute_client.submit(
            api.function_for(handler),
            ctx.endpoint.endpoint_id,
            {"request": request},
            submitter=request.user,
            stream_channel=ingress,
        )
        try:
            if cfg.retrieval_mode == RetrievalMode.FUTURES:
                result = yield from api.compute_client.wait_future(future)
            else:
                result = yield from api.compute_client.wait_polling(future)
        except BaseException:
            if ingress is not None:
                # The engine never completed (or never ran): close the
                # channel so the forwarder (and any egress consumer) cannot
                # hang on it.
                ingress.close()
            raise
        if forwarder is not None:
            # Wait for the engine's terminal event (or its close) to reach
            # the forwarder before touching the channel: even if the result
            # future somehow beat the per-chunk delivery latency, no
            # in-flight token events are dropped and the gateway-observed
            # timeline is complete.
            yield forwarder
            ingress.close()

        # Egress CPU work (serialise the response).
        if cfg.server_mode == ServerMode.ASYNC:
            yield from api.worker_slot(cfg.egress_processing_s)
        else:
            yield api.env.timeout(cfg.egress_processing_s)

        if ctx.streaming:
            token_times = list(ctx.gateway_token_times)
            result.metadata["gateway_token_times"] = token_times
            if token_times:
                result.metadata["gateway_first_token_time"] = token_times[0]
                # Feed the metrics layer's rolling TTFT/ITL windows — the
                # autoscaling control plane samples these medians.
                api.metrics.record_stream_timing(
                    ctx.model_name,
                    token_times[0] - ctx.started_at,
                    [b - a for a, b in zip(token_times, token_times[1:])],
                    endpoint=ctx.endpoint.endpoint_id if ctx.endpoint else None,
                )
        ctx.result = result
        yield from call_next(ctx)

    def _forward_stream(self, ctx: RequestContext, ingress: StreamChannel):
        """Consume engine events, timestamp them and relay to the caller."""
        tctx = ctx.trace_context
        anchor = tctx.current if tctx is not None else None
        span = None
        tokens = 0
        while True:
            event = yield ingress.get()
            if event is None:
                break
            if event.kind == "token":
                ctx.gateway_token_times.append(self.api.env.now)
                if tctx is not None and span is None:
                    span = tctx.start_span("gateway.stream_delivery",
                                           parent=anchor, layer="gateway")
                tokens += 1
                if ctx.egress is not None:
                    ctx.egress.deliver(event)
            elif event.kind == "done":
                # The terminal chunk for the caller is emitted by the gateway
                # once the authoritative result arrives via the future path.
                break
        if span is not None:
            span.attrs["tokens"] = tokens
            tctx.end_span(span)


def default_middleware_factories() -> List[MiddlewareFactory]:
    """The stock API v2 chain, in order.  Mutate a copy to customise."""
    return [
        ValidationMiddleware,
        AuthMiddleware,
        RateLimitMiddleware,
        ResponseCacheMiddleware,
        AccountingMiddleware,
        RoutingMiddleware,
        DispatchMiddleware,
    ]
