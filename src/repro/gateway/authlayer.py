"""The gateway's authorization layer.

Validates Globus-Auth-like access tokens, enforces per-model/service
policies, and caches introspection results so that "rapid repeated
requests" don't pay the auth-service round trip or get the gateway
rate-limited by the auth service (Optimization 2, §5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..auth import GlobusAuthLikeService, TokenInfo
from ..common import AuthenticationError, AuthorizationError
from ..sim import Environment, Event

__all__ = ["CachedIntrospection", "GatewayAuthLayer"]


@dataclass
class CachedIntrospection:
    info: TokenInfo
    cached_at: float


class GatewayAuthLayer:
    """Token validation + policy enforcement with an optional cache."""

    def __init__(
        self,
        env: Environment,
        auth: GlobusAuthLikeService,
        cache_enabled: bool = True,
        cache_ttl_s: float = 600.0,
        uncached_connection_setup_s: float = 1.5,
    ):
        self.env = env
        self.auth = auth
        self.cache_enabled = cache_enabled
        self.cache_ttl_s = cache_ttl_s
        self.uncached_connection_setup_s = uncached_connection_setup_s
        self._cache: Dict[str, CachedIntrospection] = {}
        #: In-flight introspections, for single-flight coalescing: a burst of
        #: requests bearing the same (not yet cached) token triggers exactly
        #: one introspection round trip instead of hammering the auth service
        #: and tripping its rate limit.
        self._pending: Dict[str, Event] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0

    def _cached_info(self, access_token: str) -> Optional[TokenInfo]:
        cached = self._cache.get(access_token)
        if cached is None:
            return None
        now = self.env.now
        if now - cached.cached_at >= self.cache_ttl_s or not cached.info.is_valid(now):
            self._cache.pop(access_token, None)
            return None
        return cached.info

    def authenticate(self, access_token: Optional[str]):
        """Simulation process: resolve a token to a :class:`TokenInfo`.

        Cached validations are effectively free; uncached ones pay the
        introspection round trip plus the compute-endpoint connection setup
        the paper describes.  Concurrent requests with the same uncached
        token share a single introspection (single-flight).
        """
        if not access_token:
            raise AuthenticationError("Missing access token")
        if self.cache_enabled:
            info = self._cached_info(access_token)
            if info is not None:
                self.cache_hits += 1
                return info
            pending = self._pending.get(access_token)
            if pending is not None:
                # Another request is already introspecting this token: wait
                # for it and reuse the cached outcome.
                self.coalesced += 1
                yield pending
                info = self._cached_info(access_token)
                if info is not None:
                    self.cache_hits += 1
                    return info
                # The leader's introspection failed; fail the same way.
                raise AuthenticationError("Access token could not be validated")

        self.cache_misses += 1
        leader_event: Optional[Event] = None
        if self.cache_enabled:
            leader_event = self.env.event()
            self._pending[access_token] = leader_event
        try:
            info = yield from self.auth.introspect(access_token)
            if not info.is_valid(self.env.now):
                raise AuthenticationError("Access token is expired or revoked")
            # Re-establishing connections with the compute layer for a request
            # whose identity was not already warm (the pre-caching behaviour).
            if self.uncached_connection_setup_s > 0:
                yield self.env.timeout(self.uncached_connection_setup_s)
            if self.cache_enabled:
                self._cache[access_token] = CachedIntrospection(
                    info=info, cached_at=self.env.now
                )
            return info
        finally:
            if leader_event is not None:
                self._pending.pop(access_token, None)
                if not leader_event.triggered:
                    leader_event.succeed()

    def authorize(self, info: TokenInfo, resource: str) -> None:
        """Policy check for ``resource`` (raises :class:`AuthorizationError`)."""
        decision = self.auth.policies.check(info.username, resource)
        if not decision.allowed:
            raise AuthorizationError(decision.reason)

    @property
    def cache_size(self) -> int:
        return len(self._cache)
