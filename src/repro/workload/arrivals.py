"""Request arrival processes.

The paper's benchmark sweeps offered request rates of 1, 5, 10, 20 req/s and
an "infinite" rate where every request is sent at t=0 to saturate the server
(§5.2.2).  Arrival processes generate the per-request send offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..common import RandomSource

__all__ = ["ArrivalProcess", "InfiniteArrival", "PoissonArrival", "UniformArrival", "make_arrival"]


class ArrivalProcess:
    """Base class: produces send-time offsets for ``n`` requests."""

    def offsets(self, n: int) -> List[float]:
        raise NotImplementedError

    @property
    def label(self) -> str:
        raise NotImplementedError


class InfiniteArrival(ArrivalProcess):
    """All requests are sent immediately (the paper's "infinite request rate")."""

    def offsets(self, n: int) -> List[float]:
        return [0.0] * n

    @property
    def label(self) -> str:
        return "inf"


class PoissonArrival(ArrivalProcess):
    """Poisson arrivals at ``rate`` requests/s (vLLM benchmark default)."""

    def __init__(self, rate: float, seed: int = 7):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate
        self.seed = seed

    def offsets(self, n: int) -> List[float]:
        rng = RandomSource(seed=self.seed)
        t = 0.0
        out = []
        for _ in range(n):
            out.append(t)
            t += rng.exponential(1.0 / self.rate)
        return out

    @property
    def label(self) -> str:
        return f"{self.rate:g} req/s (poisson)"


class UniformArrival(ArrivalProcess):
    """Deterministic, evenly spaced arrivals at ``rate`` requests/s."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate

    def offsets(self, n: int) -> List[float]:
        return [i / self.rate for i in range(n)]

    @property
    def label(self) -> str:
        return f"{self.rate:g} req/s (uniform)"


def make_arrival(rate: Optional[float], poisson: bool = True, seed: int = 7) -> ArrivalProcess:
    """``rate=None`` (or ``inf``) → infinite arrival; otherwise Poisson/uniform."""
    if rate is None or rate == float("inf"):
        return InfiniteArrival()
    return PoissonArrival(rate, seed=seed) if poisson else UniformArrival(rate)
