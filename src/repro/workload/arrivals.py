"""Request arrival processes.

The paper's benchmark sweeps offered request rates of 1, 5, 10, 20 req/s and
an "infinite" rate where every request is sent at t=0 to saturate the server
(§5.2.2).  Arrival processes generate the per-request send offsets.

Beyond the paper's stationary processes, the autoscaling benchmarks drive
*shifting* traffic: :class:`DiurnalArrival` (sinusoidal day/night load),
:class:`RampArrival` (linear ramp to a plateau) and
:class:`TraceReplayArrival` (replay of recorded send offsets, e.g. a
hand-built flash crowd).  The time-varying processes are nonhomogeneous
Poisson processes sampled by thinning, seeded for reproducibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..common import RandomSource

__all__ = [
    "ArrivalProcess",
    "InfiniteArrival",
    "PoissonArrival",
    "UniformArrival",
    "DiurnalArrival",
    "RampArrival",
    "TraceReplayArrival",
    "make_arrival",
]


class ArrivalProcess:
    """Base class: produces send-time offsets for ``n`` requests."""

    def offsets(self, n: int) -> List[float]:
        raise NotImplementedError

    @property
    def label(self) -> str:
        raise NotImplementedError


class InfiniteArrival(ArrivalProcess):
    """All requests are sent immediately (the paper's "infinite request rate")."""

    def offsets(self, n: int) -> List[float]:
        return [0.0] * n

    @property
    def label(self) -> str:
        return "inf"


class PoissonArrival(ArrivalProcess):
    """Poisson arrivals at ``rate`` requests/s (vLLM benchmark default)."""

    def __init__(self, rate: float, seed: int = 7):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate
        self.seed = seed

    def offsets(self, n: int) -> List[float]:
        rng = RandomSource(seed=self.seed)
        t = 0.0
        out = []
        for _ in range(n):
            out.append(t)
            t += rng.exponential(1.0 / self.rate)
        return out

    @property
    def label(self) -> str:
        return f"{self.rate:g} req/s (poisson)"


class UniformArrival(ArrivalProcess):
    """Deterministic, evenly spaced arrivals at ``rate`` requests/s."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = rate

    def offsets(self, n: int) -> List[float]:
        return [i / self.rate for i in range(n)]

    @property
    def label(self) -> str:
        return f"{self.rate:g} req/s (uniform)"


class _ThinnedArrival(ArrivalProcess):
    """Nonhomogeneous Poisson arrivals via Lewis-Shedler thinning.

    Subclasses provide :meth:`rate_at` (instantaneous rate, req/s) and
    :attr:`peak_rate` (an upper bound on it); candidate events are drawn
    from a homogeneous process at the peak rate and accepted with
    probability ``rate_at(t) / peak_rate``.
    """

    peak_rate: float = 1.0

    def __init__(self, seed: int = 7):
        self.seed = seed

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def offsets(self, n: int) -> List[float]:
        if self.peak_rate <= 0:
            raise ValueError("peak_rate must be > 0")
        rng = RandomSource(seed=self.seed)
        out: List[float] = []
        t = 0.0
        while len(out) < n:
            t += rng.exponential(1.0 / self.peak_rate)
            if rng.uniform() * self.peak_rate <= self.rate_at(t):
                out.append(t)
        return out


class DiurnalArrival(_ThinnedArrival):
    """Sinusoidal day/night load between ``base_rate`` and ``peak_rate``.

    The cycle starts at the trough (night) and peaks half a period in, so a
    benchmark run beginning at t=0 always exercises a cold ramp first.
    """

    def __init__(self, base_rate: float, peak_rate: float,
                 period_s: float = 86400.0, phase_s: float = 0.0, seed: int = 7):
        if base_rate < 0 or peak_rate <= 0 or peak_rate < base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate, peak_rate > 0")
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        super().__init__(seed=seed)
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period_s = period_s
        self.phase_s = phase_s

    def rate_at(self, t: float) -> float:
        mid = (self.base_rate + self.peak_rate) / 2.0
        amplitude = (self.peak_rate - self.base_rate) / 2.0
        phase = 2.0 * math.pi * (t + self.phase_s) / self.period_s
        return mid - amplitude * math.cos(phase)

    @property
    def label(self) -> str:
        return (f"diurnal {self.base_rate:g}-{self.peak_rate:g} req/s "
                f"(period {self.period_s:g}s)")


class RampArrival(_ThinnedArrival):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``ramp_s``,
    holding the end rate afterwards (a launch-day traffic shape)."""

    def __init__(self, start_rate: float, end_rate: float, ramp_s: float,
                 seed: int = 7):
        if start_rate < 0 or end_rate < 0 or max(start_rate, end_rate) <= 0:
            raise ValueError("rates must be >= 0 with a positive maximum")
        if ramp_s <= 0:
            raise ValueError("ramp_s must be > 0")
        super().__init__(seed=seed)
        self.start_rate = start_rate
        self.end_rate = end_rate
        self.ramp_s = ramp_s
        self.peak_rate = max(start_rate, end_rate)

    def rate_at(self, t: float) -> float:
        if t >= self.ramp_s:
            return self.end_rate
        frac = t / self.ramp_s
        return self.start_rate + (self.end_rate - self.start_rate) * frac

    @property
    def label(self) -> str:
        return (f"ramp {self.start_rate:g}->{self.end_rate:g} req/s "
                f"over {self.ramp_s:g}s")


class TraceReplayArrival(ArrivalProcess):
    """Replay recorded send offsets (e.g. a production trace or a hand-built
    flash crowd).  Requests beyond the trace length wrap around, shifted by
    whole trace spans, so any ``n`` is serviceable."""

    def __init__(self, trace: Sequence[float], name: str = "trace"):
        if not trace:
            raise ValueError("trace must be non-empty")
        offsets = sorted(float(t) for t in trace)
        if offsets[0] < 0:
            raise ValueError("trace offsets must be >= 0")
        self.trace = offsets
        self.name = name
        # Wrap period: the trace span plus one mean inter-arrival gap, so a
        # repeated trace does not emit two simultaneous requests at the seam.
        span = offsets[-1] - offsets[0]
        mean_gap = span / (len(offsets) - 1) if len(offsets) > 1 else 1.0
        self._wrap_s = span + max(mean_gap, 1e-9)

    def offsets(self, n: int) -> List[float]:
        out: List[float] = []
        rounds = 0
        while len(out) < n:
            shift = rounds * self._wrap_s
            take = min(len(self.trace), n - len(out))
            out.extend(t + shift for t in self.trace[:take])
            rounds += 1
        return out

    @property
    def label(self) -> str:
        return f"replay:{self.name} ({len(self.trace)} events)"


def make_arrival(rate: Optional[float], poisson: bool = True, seed: int = 7) -> ArrivalProcess:
    """``rate=None`` (or ``inf``) → infinite arrival; otherwise Poisson/uniform."""
    if rate is None or rate == float("inf"):
        return InfiniteArrival()
    return PoissonArrival(rate, seed=seed) if poisson else UniformArrival(rate)
