"""JSON Lines batch-input files (the ``/v1/batches`` input format, §4.4).

"Users submit batch jobs via the '/v1/batches' endpoint, providing an input
file in JSON Lines format where each line constitutes a complete inference
request."
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..common import ValidationError
from ..serving import InferenceRequest, RequestKind, estimate_tokens

__all__ = ["requests_to_jsonl", "write_batch_file", "parse_batch_lines", "read_batch_file"]


def _request_to_line(request: InferenceRequest) -> dict:
    return {
        "custom_id": request.request_id,
        "method": "POST",
        "url": "/v1/chat/completions",
        "body": {
            "model": request.model,
            "messages": [{"role": "user", "content": request.prompt_text or ""}],
            "max_tokens": request.max_output_tokens,
            "prompt_tokens_hint": request.prompt_tokens,
        },
    }


def requests_to_jsonl(requests: Iterable[InferenceRequest]) -> str:
    """Serialise requests to the JSONL payload a user would upload."""
    return "\n".join(json.dumps(_request_to_line(r)) for r in requests)


def write_batch_file(path: Union[str, Path], requests: Iterable[InferenceRequest]) -> Path:
    path = Path(path)
    path.write_text(requests_to_jsonl(requests) + "\n")
    return path


def parse_batch_lines(text: str, default_user: str = "batch@anl.gov") -> List[InferenceRequest]:
    """Parse JSONL batch input into :class:`InferenceRequest` objects.

    Raises :class:`ValidationError` on malformed lines, matching the
    gateway's input-validation responsibility.
    """
    requests: List[InferenceRequest] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"Batch input line {lineno} is not valid JSON: {exc}") from None
        body = payload.get("body", {})
        model = body.get("model")
        if not model:
            raise ValidationError(f"Batch input line {lineno} is missing 'body.model'")
        messages = body.get("messages", [])
        content = " ".join(m.get("content", "") for m in messages)
        prompt_tokens = int(body.get("prompt_tokens_hint") or max(1, estimate_tokens(content)))
        max_tokens = int(body.get("max_tokens", 256))
        if max_tokens <= 0:
            raise ValidationError(f"Batch input line {lineno} has non-positive max_tokens")
        requests.append(
            InferenceRequest(
                request_id=str(payload.get("custom_id", f"batch-line-{lineno}")),
                model=model,
                prompt_tokens=prompt_tokens,
                max_output_tokens=max_tokens,
                kind=RequestKind.CHAT_COMPLETION,
                user=default_user,
                prompt_text=content,
                metadata={"batch_line": lineno},
            )
        )
    if not requests:
        raise ValidationError("Batch input contains no requests")
    return requests


def read_batch_file(path: Union[str, Path]) -> List[InferenceRequest]:
    return parse_batch_lines(Path(path).read_text())
