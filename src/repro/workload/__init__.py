"""Workload generation and benchmark driving.

ShareGPT-like synthetic conversations, arrival processes (Poisson / uniform
/ infinite), the benchmark client used to regenerate the paper's figures,
and JSONL batch-input handling.
"""

from .arrivals import (
    ArrivalProcess,
    DiurnalArrival,
    InfiniteArrival,
    PoissonArrival,
    RampArrival,
    TraceReplayArrival,
    UniformArrival,
    make_arrival,
)
from .batchfile import parse_batch_lines, read_batch_file, requests_to_jsonl, write_batch_file
from .benchmark_client import BenchmarkClient
from .sharegpt import BATCH_GENERATION_CONFIG, ShareGPTConfig, ShareGPTWorkload

__all__ = [
    "ShareGPTWorkload",
    "ShareGPTConfig",
    "BATCH_GENERATION_CONFIG",
    "ArrivalProcess",
    "InfiniteArrival",
    "PoissonArrival",
    "UniformArrival",
    "DiurnalArrival",
    "RampArrival",
    "TraceReplayArrival",
    "make_arrival",
    "BenchmarkClient",
    "requests_to_jsonl",
    "write_batch_file",
    "parse_batch_lines",
    "read_batch_file",
]
