"""Benchmark client (the vLLM ``benchmark_serving.py`` equivalent, §5.2.2).

The client sends a list of requests to a *target* according to an arrival
process and records per-request timings.  A target is anything with a
``submit(request) -> Event`` method whose event resolves to an object with
``success``, ``output_tokens`` and optionally ``first_token_time`` — the
direct vLLM front-end, the FIRST gateway client, or the OpenAI-API baseline
all satisfy this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..metrics import BenchmarkSummary, MetricsCollector, RequestRecord, summarize
from ..serving import InferenceRequest
from ..sim import Environment
from .arrivals import ArrivalProcess, InfiniteArrival

__all__ = ["BenchmarkClient"]


class BenchmarkClient:
    """Drives a target with a workload and produces a :class:`BenchmarkSummary`."""

    def __init__(self, env: Environment, target, label: Optional[str] = None):
        self.env = env
        self.target = target
        self.label = label or getattr(target, "name", type(target).__name__)
        self.collector = MetricsCollector()

    # -- simulation process --------------------------------------------------------
    def run(
        self,
        requests: List[InferenceRequest],
        arrival: Optional[ArrivalProcess] = None,
        summary_label: Optional[str] = None,
    ):
        """Simulation process: send every request and wait for all completions."""
        arrival = arrival or InfiniteArrival()
        offsets = arrival.offsets(len(requests))
        start = self.env.now
        done_events = []
        for request, offset in zip(requests, offsets):
            done = self.env.event()
            done_events.append(done)
            self.env.process(self._send_one(request, start + offset, done))
        yield self.env.all_of(done_events)
        duration = self.env.now - start
        label = summary_label or f"{self.label} @ {arrival.label}"
        return summarize(self.collector, label=label, duration_s=duration)

    def _send_one(self, request: InferenceRequest, send_at: float, done):
        if send_at > self.env.now:
            yield self.env.timeout(send_at - self.env.now)
        request.arrival_time = self.env.now
        record = RequestRecord(
            request_id=request.request_id,
            model=request.model,
            send_time=self.env.now,
            prompt_tokens=request.prompt_tokens,
        )
        try:
            result = yield self.target.submit(request)
        except Exception as exc:  # noqa: BLE001 - benchmark records failures
            record.success = False
            record.error = f"{type(exc).__name__}: {exc}"
            record.completion_time = self.env.now
            self.collector.record(record)
            done.succeed()
            return
        record.completion_time = self.env.now
        if result is None:
            record.success = False
            record.error = "no result"
        else:
            record.success = bool(getattr(result, "success", True))
            record.output_tokens = int(getattr(result, "output_tokens", 0))
            first_token = getattr(result, "first_token_time", None)
            if first_token:
                record.first_token_time = first_token
            # Streaming requests: prefer the gateway-observed token timeline
            # (engine timing + per-chunk delivery) over the engine-side TTFT.
            token_times = getattr(result, "metadata", {}).get("gateway_token_times")
            if token_times:
                record.token_times = list(token_times)
                record.first_token_time = token_times[0]
            record.error = getattr(result, "error", None)
        self.collector.record(record)
        done.succeed()
