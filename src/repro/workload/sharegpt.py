"""Synthetic ShareGPT-like workload.

The paper benchmarks with the ShareGPT dataset ("thousands of real-world
user-AI conversations across diverse topics", §5.2.2), sampling 1000
requests and reusing the same prompts/output lengths across scenarios for a
fair comparison.  ShareGPT itself cannot be redistributed here, so this
module generates a statistically similar workload: lognormal prompt and
output token lengths whose means match the effective values implied by the
paper's measurements (≈220 prompt tokens and ≈180 output tokens per
request), with a fixed seed so every scenario sees the identical request
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..common import RandomSource
from ..serving import InferenceRequest, RequestKind

__all__ = ["ShareGPTConfig", "ShareGPTWorkload", "BATCH_GENERATION_CONFIG"]

_TOPICS = [
    "genomic sequence annotation",
    "climate model downscaling",
    "particle collision reconstruction",
    "HPC job scheduler troubleshooting",
    "materials synthesis planning",
    "radio telescope calibration",
    "protein folding energetics",
    "turbulent flow simulation",
]


@dataclass(frozen=True)
class ShareGPTConfig:
    """Shape of the synthetic conversation workload."""

    num_requests: int = 1000
    mean_prompt_tokens: float = 220.0
    prompt_sigma: float = 0.8
    mean_output_tokens: float = 180.0
    output_sigma: float = 0.7
    min_prompt_tokens: int = 8
    max_prompt_tokens: int = 3072
    min_output_tokens: int = 4
    max_output_tokens: int = 1500
    seed: int = 20240714

    def __post_init__(self):
        if self.num_requests <= 0:
            raise ValueError("num_requests must be > 0")
        if self.mean_prompt_tokens <= 0 or self.mean_output_tokens <= 0:
            raise ValueError("token means must be > 0")


#: Length profile used for the offline batch-mode experiments (§5.3.1), where
#: generations are not capped by interactive chat targets and run much longer.
BATCH_GENERATION_CONFIG = ShareGPTConfig(
    num_requests=1000,
    mean_prompt_tokens=280.0,
    mean_output_tokens=860.0,
    output_sigma=0.6,
    max_output_tokens=4096,
    seed=20240715,
)


class ShareGPTWorkload:
    """Deterministic generator of ShareGPT-like requests."""

    def __init__(self, config: Optional[ShareGPTConfig] = None):
        self.config = config or ShareGPTConfig()

    def generate(
        self,
        model: str,
        num_requests: Optional[int] = None,
        user: str = "benchmark@anl.gov",
        id_prefix: str = "sharegpt",
    ) -> List[InferenceRequest]:
        """Produce the request list for ``model``.

        The same seed always produces the same (prompt length, output length)
        pairs, mirroring the paper's "same set of input prompts and
        corresponding target output lengths ... for each model across all
        relevant tests".
        """
        cfg = self.config
        n = num_requests or cfg.num_requests
        rng = RandomSource(seed=cfg.seed)
        requests = []
        for i in range(n):
            prompt_tokens = int(
                min(cfg.max_prompt_tokens,
                    max(cfg.min_prompt_tokens, rng.lognormal(cfg.mean_prompt_tokens, cfg.prompt_sigma)))
            )
            output_tokens = int(
                min(cfg.max_output_tokens,
                    max(cfg.min_output_tokens, rng.lognormal(cfg.mean_output_tokens, cfg.output_sigma)))
            )
            topic = _TOPICS[i % len(_TOPICS)]
            requests.append(
                InferenceRequest(
                    request_id=f"{id_prefix}-{i:06d}",
                    model=model,
                    prompt_tokens=prompt_tokens,
                    max_output_tokens=output_tokens,
                    kind=RequestKind.CHAT_COMPLETION,
                    user=user,
                    prompt_text=f"[conversation {i}] Please help with {topic}.",
                    metadata={"workload": "sharegpt-like", "index": i},
                )
            )
        return requests

    def mean_output_tokens(self, requests: List[InferenceRequest]) -> float:
        if not requests:
            return 0.0
        return sum(r.max_output_tokens for r in requests) / len(requests)
