"""detlint rule engine: config, pragmas, baselines, file walking, reports.

The engine is deliberately small: it parses each file once, precomputes the
shared per-file context (import alias map, package flags from
``[tool.detlint]``), runs every enabled rule's :class:`ast.NodeVisitor`
over the tree, then filters the collected findings through line pragmas
and the optional baseline file.  Rules live in
:mod:`repro.analysis.rules`; nothing here knows what any rule checks.

Suppression forms (a *reason* is mandatory — a pragma without one is
itself a finding, ``DET000``):

* line pragma — ``x = time.time()  # detlint: disable=DET001 — reason``
  (also honoured on a standalone comment line directly above the target);
* file pragma — ``# detlint: disable-file=DET001 — reason`` anywhere at
  module scope, suppressing the rule for the whole file;
* config allowlists — e.g. ``[tool.detlint.allow_wallclock]`` maps a path
  to the reason wall-clock reads are legitimate there (profiling layers
  measure real wall time *about* the simulation, never inside it);
* baseline — ``--baseline findings.json`` suppresses previously recorded
  findings so the gate only fails on *new* ones.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DetlintConfig",
    "FileContext",
    "Finding",
    "ImportMap",
    "LintEngine",
    "lint_paths",
    "load_config",
]


# ---------------------------------------------------------------------------
# findings


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # posix-style, relative to the project root
    line: int
    col: int
    rule: str
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, str, int, str]:
        # (path, line, rule) first — the documented stable order for JSON
        # output, so committed baseline diffs stay reviewable.
        return (self.path, self.line, self.rule, self.col, self.message)

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    def baseline_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# configuration


def _parse_toml_minimal(text: str) -> dict:
    """Tiny TOML subset parser for ``pyproject.toml`` on Python 3.10.

    Python 3.11+ ships :mod:`tomllib`; on 3.10 (the package floor) this
    fallback understands exactly the subset ``[tool.detlint]`` uses:
    table headers, string / integer / boolean scalars, single-line and
    multi-line arrays of strings, and quoted keys.  It is not a general
    TOML parser and never needs to be.
    """
    root: dict = {}
    table = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            name = line.strip("[]").strip()
            table = root
            for part in _split_table_name(name):
                table = table.setdefault(part, {})
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if value.startswith("[") and not value.endswith("]"):
            # Multi-line array: accumulate until the closing bracket.
            while i < len(lines) and not value.rstrip().endswith("]"):
                value += " " + lines[i].strip()
                i += 1
        table[key] = _parse_toml_value(value)
    return root


def _split_table_name(name: str) -> List[str]:
    parts, current, quoted = [], "", False
    for ch in name:
        if ch == '"':
            quoted = not quoted
        elif ch == "." and not quoted:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return parts


def _parse_toml_value(value: str):
    value = value.strip()
    if value.startswith("["):
        inner = value[1:-1] if value.endswith("]") else value[1:]
        return [v for v in (_strip_string(p) for p in _split_array(inner)) if v is not None]
    if value in ("true", "false"):
        return value == "true"
    stripped = _strip_string(value)
    if stripped is not None:
        return stripped
    try:
        return int(value)
    except ValueError:
        return value


def _split_array(inner: str) -> List[str]:
    parts, current, quoted = [], "", False
    for ch in inner:
        if ch == '"':
            quoted = not quoted
            current += ch
        elif ch == "," and not quoted:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


def _strip_string(value: str) -> Optional[str]:
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return None


def _load_pyproject(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib  # Python 3.11+
    except ImportError:  # pragma: no cover - 3.10 fallback
        return _parse_toml_minimal(text)
    return tomllib.loads(text)


@dataclass
class Profile:
    """Per-path-prefix rule selection (e.g. the relaxed exemplar profile)."""

    name: str
    paths: List[str] = field(default_factory=list)
    disable: List[str] = field(default_factory=list)

    def matches(self, path: str) -> bool:
        return any(path == p or path.startswith(p.rstrip("/") + "/")
                   for p in self.paths)


@dataclass
class DetlintConfig:
    """Parsed ``[tool.detlint]`` section (with built-in defaults)."""

    #: Path prefixes whose modules run on the simulated-time path; DET004
    #: (unordered iteration / float accumulation) is enforced only there.
    sim_path: List[str] = field(default_factory=list)
    #: Observe-only path prefixes (ARCH001: no scheduling, no sim RNG).
    observe_only: List[str] = field(default_factory=list)
    #: Modules allowed to touch global RNG state and ``hash()`` — the
    #: seeded-randomness substrate itself.
    randomness_modules: List[str] = field(default_factory=list)
    #: Wall-clock allowlist: path -> reason (DET001).  A reason is part of
    #: the entry on purpose: the allowlist is documentation, not an escape.
    allow_wallclock: Dict[str, str] = field(default_factory=dict)
    #: ARCH002: the gateway API file/class and its committed method roster.
    gateway_api_file: str = ""
    gateway_api_class: str = "InferenceGatewayAPI"
    gateway_api_methods: List[str] = field(default_factory=list)
    #: Relaxed / alternative profiles by path prefix.
    profiles: List[Profile] = field(default_factory=list)

    def disabled_rules_for(self, path: str) -> Set[str]:
        disabled: Set[str] = set()
        for profile in self.profiles:
            if profile.matches(path):
                disabled.update(profile.disable)
        return disabled


def load_config(root: Path) -> DetlintConfig:
    """Load ``[tool.detlint]`` from ``<root>/pyproject.toml`` (if present)."""
    pyproject = root / "pyproject.toml"
    data: dict = {}
    if pyproject.exists():
        data = _load_pyproject(pyproject).get("tool", {}).get("detlint", {})
    profiles = [
        Profile(name=name, paths=list(body.get("paths", [])),
                disable=list(body.get("disable", [])))
        for name, body in data.get("profiles", {}).items()
    ]
    return DetlintConfig(
        sim_path=list(data.get("sim_path", [])),
        observe_only=list(data.get("observe_only", [])),
        randomness_modules=list(data.get("randomness_modules", [])),
        allow_wallclock=dict(data.get("allow_wallclock", {})),
        gateway_api_file=data.get("gateway_api_file", ""),
        gateway_api_class=data.get("gateway_api_class", "InferenceGatewayAPI"),
        gateway_api_methods=list(data.get("gateway_api_methods", [])),
        profiles=profiles,
    )


# ---------------------------------------------------------------------------
# import alias resolution (shared by several rules)


class ImportMap:
    """Maps local names to the dotted module/attribute they were imported as.

    ``import numpy as np`` -> ``np`` = ``numpy``;
    ``from time import perf_counter as pc`` -> ``pc`` = ``time.perf_counter``.
    Rules resolve call targets through this map so aliasing cannot dodge a
    rule (``import time as t; t.time()`` still resolves to ``time.time``).
    """

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.partition(".")[0]] = (
                        alias.name if alias.asname else alias.name.partition(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name for a Name/Attribute chain, resolved through imports."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# pragmas

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)"
    r"(?:\s*(?:—|--|-)\s*(?P<reason>\S.*))?")


@dataclass
class _Pragmas:
    #: line -> rules suppressed on that line.
    lines: Dict[int, Set[str]]
    #: rules suppressed for the whole file.
    file_rules: Set[str]
    #: DET000 findings for pragmas missing the mandatory reason.
    errors: List[Tuple[int, int, str]]


def _iter_comments(source: str):
    """Yield ``(lineno, col, text, is_standalone)`` for real comment tokens.

    Tokenizing (rather than scanning raw lines) means pragma-looking text
    inside string literals and docstrings can never register as a pragma —
    or as a malformed one.
    """
    import io
    import tokenize

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                standalone = token.line[:token.start[1]].strip() == ""
                yield token.start[0], token.start[1], token.string, standalone
    except tokenize.TokenizeError:  # pragma: no cover - engine still lints
        return


def _collect_pragmas(source: str) -> _Pragmas:
    lines: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    errors: List[Tuple[int, int, str]] = []
    comments = list(_iter_comments(source))
    #: Comment-only lines — a standalone pragma skips past its own comment
    #: block (reasons often wrap over several lines) to the code below it.
    comment_only = {lineno for lineno, _, _, standalone in comments if standalone}
    for lineno, col, text, standalone in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            if "detlint:" in text:
                errors.append((lineno, col + 1,
                               "unparseable detlint pragma (expected "
                               "'# detlint: disable=RULE — reason')"))
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        if not match.group("reason"):
            errors.append((lineno, col + 1,
                           f"pragma for {', '.join(sorted(rules))} is missing "
                           "the mandatory reason ('# detlint: disable=RULE — "
                           "why this is safe')"))
            continue
        if match.group("kind") == "disable-file":
            file_rules.update(rules)
            continue
        if standalone:
            # Standalone pragma comment: applies to the next source line
            # (skipping the rest of its own comment block).
            target = lineno + 1
            while target in comment_only:
                target += 1
            lines.setdefault(target, set()).update(rules)
        # A trailing pragma also covers the statement starting on its own
        # line (flagged nodes report the statement's first line even when
        # the pragma trails a continuation).
        lines.setdefault(lineno, set()).update(rules)
    return _Pragmas(lines=lines, file_rules=file_rules, errors=errors)


# ---------------------------------------------------------------------------
# per-file context handed to the rules


@dataclass
class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    path: str  # project-root-relative posix path
    tree: ast.Module
    source: str
    imports: ImportMap
    config: DetlintConfig
    findings: List[Finding] = field(default_factory=list)

    def add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, rule=rule, message=message))

    # -- package-role predicates (driven by [tool.detlint]) ---------------
    def _in_any(self, prefixes: Iterable[str]) -> bool:
        return any(self.path == p or self.path.startswith(p.rstrip("/") + "/")
                   for p in prefixes)

    @property
    def is_sim_path(self) -> bool:
        return self._in_any(self.config.sim_path)

    @property
    def is_observe_only(self) -> bool:
        return self._in_any(self.config.observe_only)

    @property
    def is_randomness_module(self) -> bool:
        return self.path in self.config.randomness_modules

    @property
    def wallclock_reason(self) -> Optional[str]:
        return self.config.allow_wallclock.get(self.path)


# ---------------------------------------------------------------------------
# the engine


class LintEngine:
    """Runs every registered rule over a set of files."""

    def __init__(self, config: DetlintConfig, root: Path,
                 rules: Optional[Dict[str, type]] = None):
        from .rules import RULE_REGISTRY

        self.config = config
        self.root = root
        self.rules = dict(rules if rules is not None else RULE_REGISTRY)

    # -- discovery --------------------------------------------------------
    def iter_files(self, paths: Sequence[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = (self.root / raw) if not Path(raw).is_absolute() else Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    # -- single file ------------------------------------------------------
    def lint_file(self, path: Path) -> List[Finding]:
        rel = self._relpath(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            return [Finding(path=rel, line=exc.lineno or 1, col=1,
                            rule="DET000", message=f"syntax error: {exc.msg}")]
        pragmas = _collect_pragmas(source)
        disabled = self.config.disabled_rules_for(rel) | pragmas.file_rules
        ctx = FileContext(path=rel, tree=tree, source=source,
                          imports=ImportMap(tree), config=self.config)
        for name, rule_cls in sorted(self.rules.items()):
            if name in disabled:
                continue
            rule_cls(ctx).visit(tree)
        findings = [
            f for f in ctx.findings
            if f.rule not in pragmas.lines.get(f.line, ())
        ]
        findings.extend(
            Finding(path=rel, line=line, col=col, rule="DET000", message=msg)
            for line, col, msg in pragmas.errors)
        return findings

    # -- many files -------------------------------------------------------
    def lint(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for path in self.iter_files(paths):
            findings.extend(self.lint_file(path))
        return sorted(findings, key=lambda f: f.sort_key)


# ---------------------------------------------------------------------------
# baseline + reports


def load_baseline(path: Path) -> Set[Tuple[str, int, str]]:
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data["findings"] if isinstance(data, dict) else data
    return {(e["path"], e["line"], e["rule"]) for e in entries}


def apply_baseline(findings: List[Finding],
                   baseline: Set[Tuple[str, int, str]]) -> List[Finding]:
    return [f for f in findings if f.baseline_key() not in baseline]


def render_text(findings: List[Finding]) -> str:
    return "\n".join(f.render() for f in findings)


def render_json(findings: List[Finding]) -> str:
    """Stable JSON: findings sorted by ``(path, line, rule)`` so committed
    baseline diffs are reviewable line-by-line."""
    payload = {"findings": [f.to_dict()
                            for f in sorted(findings, key=lambda f: f.sort_key)]}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def lint_paths(paths: Sequence[str], root: Optional[Path] = None,
               config: Optional[DetlintConfig] = None) -> List[Finding]:
    """Convenience one-call API (tests, notebooks): lint and return findings."""
    root = root or Path.cwd()
    config = config or load_config(root)
    return LintEngine(config, root).lint(paths)
