"""Determinism guard plane: static analysis (detlint) + runtime sanitizer.

The whole repository stakes correctness on one invariant — simulated-time
results are bit-identical across macro-stepping, queue backends, sweep
worker counts and partitioned federated runs.  This package enforces the
*sources* of that invariant:

* **detlint** (:mod:`repro.analysis.engine` / :mod:`repro.analysis.rules`)
  is an AST rule engine that machine-checks the ROADMAP's conventions:
  no wall-clock reads on the sim path (DET001), all randomness through
  :class:`repro.common.RandomSource` (DET002), no ``PYTHONHASHSEED``-
  dependent ``hash()`` keying (DET003), no unordered-set iteration or
  float accumulation on the sim path (DET004), pickle-safe sweep /
  boundary payloads (DET005), observe-only ``obs/`` (ARCH001) and
  middleware-only gateway changes (ARCH002).  Run it with::

      python -m repro.analysis src/ benchmarks/ examples/

* **DetSan** (:mod:`repro.analysis.detsan`) is an opt-in runtime
  sanitizer (``REPRO_DETSAN=1`` or ``Environment(sanitize=True)``) that
  shadows the kernel step/push path — zero overhead when unattached —
  and flags events scheduled in the past, duplicate
  ``(time, priority, eid)`` keys and RNG draws attributed to
  observe-only layers; :func:`repro.analysis.detsan.compare_hashseeds`
  reruns a scenario under two ``PYTHONHASHSEED`` values and diffs the
  merged fingerprints.
"""

from .engine import (
    DetlintConfig,
    Finding,
    LintEngine,
    load_config,
    lint_paths,
)
from .rules import RULE_REGISTRY
from .detsan import DetSan, DetSanError, HashseedReport, compare_hashseeds

__all__ = [
    "DetlintConfig",
    "DetSan",
    "DetSanError",
    "Finding",
    "HashseedReport",
    "LintEngine",
    "RULE_REGISTRY",
    "compare_hashseeds",
    "lint_paths",
    "load_config",
]
