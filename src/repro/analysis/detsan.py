"""DetSan: opt-in runtime determinism sanitizer for the sim kernel.

Static rules (:mod:`repro.analysis.rules`) catch determinism hazards that
are visible in source; DetSan catches the ones that only exist at runtime.
It attaches to a :class:`repro.sim.Environment` with the same
zero-overhead-unattached shadow-step pattern as ``attach_profiler`` — the
plain kernel never pays a branch — and checks three invariants:

* **no time travel** — every pushed event lands at ``time >= now`` and the
  clock never moves backwards across a step (a queue-backend ordering bug
  would surface here before it corrupts a fingerprint);
* **unique event keys** — ``(time, priority, eid)`` must be unique; a
  duplicate (e.g. a bad ``import_pending`` merge) makes pop order
  backend-dependent;
* **observe-only layers stay observe-only** — a
  :class:`~repro.common.RandomSource` draw issued from ``repro/obs/``
  perturbs the sim's RNG streams, so results would differ with
  observability on.  DetSan patches the draw methods (class-level, only
  while attached) and walks the call stack to attribute each draw.

Enable per environment with ``Environment(sanitize=True)``, or process-wide
with ``REPRO_DETSAN=1`` (every new environment self-attaches).  Sanitizing
is observe-only: it never changes scheduling order, so sanitized runs are
bit-identical to plain runs.

:func:`compare_hashseeds` is the complementary subprocess harness: it
reruns a scenario under two pinned ``PYTHONHASHSEED`` values and diffs the
merged fingerprints — the end-to-end proof that no ``hash()``-keyed
ordering leaks into results (the ``hashseed-determinism`` CI job drives it
against a partitioned 2-worker federation).
"""

from __future__ import annotations

import functools
import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DetSan",
    "DetSanError",
    "HashseedReport",
    "compare_hashseeds",
    "partitioned_fingerprint",
    "quickstart_fingerprint",
]


class DetSanError(RuntimeError):
    """A determinism invariant was violated at runtime."""


# ---------------------------------------------------------------------------
# RandomSource draw attribution (class-level patch, active only while at
# least one sanitizer is attached)

_DRAW_METHODS = ("uniform", "exponential", "lognormal", "integers", "choice",
                 "normal", "jitter")
_OBS_MARKER = f"{os.sep}obs{os.sep}"
_ACTIVE: List["DetSan"] = []
_SAVED_DRAWS: Optional[dict] = None


def _obs_frame() -> Optional[str]:
    """Filename of the nearest observe-only frame on the stack, if any."""
    frame = sys._getframe(2)
    for _ in range(32):
        if frame is None:
            return None
        filename = frame.f_code.co_filename
        if "repro" in filename and _OBS_MARKER in filename:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return None


def _patch_draws() -> None:
    global _SAVED_DRAWS
    if _SAVED_DRAWS is not None:
        return
    try:
        from ..common.randomness import RandomSource
    except Exception:  # pragma: no cover - no-numpy environments
        _SAVED_DRAWS = {}
        return
    saved = {}
    for name in _DRAW_METHODS:
        original = getattr(RandomSource, name)
        saved[name] = original

        @functools.wraps(original)
        def wrapper(self, *args, __orig=original, __name=name, **kwargs):
            # Streams explicitly dedicated to sampling (e.g. the tracer's
            # retention rng) are exempt: they are not sim randomness.
            site = None if getattr(self, "sampler_only", False) else _obs_frame()
            if site is not None:
                for sanitizer in list(_ACTIVE):
                    sanitizer._record(
                        f"RandomSource.{__name}() drawn from observe-only "
                        f"layer at {site}; obs/ must not consume sim RNG")
            return __orig(self, *args, **kwargs)

        setattr(RandomSource, name, wrapper)
    _SAVED_DRAWS = saved


def _unpatch_draws() -> None:
    global _SAVED_DRAWS
    if _SAVED_DRAWS is None:
        return
    if _SAVED_DRAWS:
        from ..common.randomness import RandomSource

        for name, original in _SAVED_DRAWS.items():
            setattr(RandomSource, name, original)
    _SAVED_DRAWS = None


# ---------------------------------------------------------------------------
# the sanitizer


class DetSan:
    """Runtime determinism sanitizer for one :class:`~repro.sim.Environment`.

    ``strict=True`` (default) raises :class:`DetSanError` at the violation
    site; ``strict=False`` records violations in :attr:`violations` for
    later inspection (e.g. property tests asserting a violation *is*
    detected).
    """

    def __init__(self, strict: bool = True, max_tracked_keys: int = 200_000):
        self.strict = strict
        self.violations: List[str] = []
        self._max_tracked = max_tracked_keys
        self._env = None
        self._seen_keys: set = set()
        self._orig_push = None
        self._had_instance_step = False
        self._prev_instance_step = None

    # -- violation plumbing -----------------------------------------------
    def _record(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise DetSanError(message)

    # -- attach / detach ---------------------------------------------------
    def attach(self, env) -> None:
        if self._env is not None:
            raise RuntimeError("DetSan is already attached")
        self._env = env
        self._orig_push = env._push
        self._had_instance_step = "step" in env.__dict__
        self._prev_instance_step = env.__dict__.get("step")
        prev_step = env.step  # bound method (class, or a profiler's shadow)
        sanitizer = self

        def sanitized_step() -> None:
            before = env._now
            prev_step()
            if env._now < before:
                sanitizer._record(
                    f"kernel clock moved backwards: {env._now!r} after "
                    f"{before!r} (event-queue ordering violation)")

        def checked_push(time, priority, eid, event) -> None:
            if time < env._now:
                sanitizer._record(
                    f"event eid={eid} scheduled in the past: t={time!r} < "
                    f"now={env._now!r}")
            key = (time, priority, eid)
            seen = sanitizer._seen_keys
            if key in seen:
                sanitizer._record(
                    f"duplicate event key (time={time!r}, priority={priority}, "
                    f"eid={eid}); pop order would be backend-dependent")
            else:
                seen.add(key)
                if len(seen) > sanitizer._max_tracked:
                    now = env._now
                    sanitizer._seen_keys = {k for k in seen if k[0] >= now}
            sanitizer._orig_push(time, priority, eid, event)

        env.__dict__["step"] = sanitized_step
        env._push = checked_push
        env.sanitizer = self
        _ACTIVE.append(self)
        _patch_draws()

    def detach(self) -> None:
        env = self._env
        if env is None:
            return
        # Restore the push binding from the live queue (the queue may have
        # been swapped by import_pending since attach).
        env._push = env._pending.push
        if self._had_instance_step:
            env.__dict__["step"] = self._prev_instance_step
        else:
            env.__dict__.pop("step", None)
        env.sanitizer = None
        self._env = None
        self._seen_keys.clear()
        if self in _ACTIVE:
            _ACTIVE.remove(self)
        if not _ACTIVE:
            _unpatch_draws()


# ---------------------------------------------------------------------------
# hash-seed comparison harness

#: Bootstrap executed by each half of the comparison.  It resolves a
#: ``module:callable`` target, calls it, and prints the fingerprint of the
#: result (a fingerprint string, anything with ``.fingerprint()``, or a
#: payload dict carrying a ``"mergeable"``).
_BOOTSTRAP = """\
import importlib, sys
target = sys.argv[1]
module_name, _, attr = target.partition(":")
fn = getattr(importlib.import_module(module_name), attr)
result = fn()
if isinstance(result, str):
    fp = result
elif hasattr(result, "fingerprint"):
    fp = result.fingerprint()
elif isinstance(result, dict) and hasattr(result.get("mergeable"), "fingerprint"):
    fp = result["mergeable"].fingerprint()
else:
    raise SystemExit(f"target returned un-fingerprintable {type(result)!r}")
print("DETSAN-FINGERPRINT", fp)
"""


@dataclass
class HashseedReport:
    """Outcome of one :func:`compare_hashseeds` run."""

    target: str
    seeds: Tuple[int, ...]
    fingerprints: Dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        values = set(self.fingerprints.values())
        return len(self.fingerprints) == len(self.seeds) and len(values) == 1

    def to_dict(self) -> dict:
        return {"target": self.target, "ok": self.ok,
                "seeds": list(self.seeds),
                "fingerprints": {str(s): fp
                                 for s, fp in sorted(self.fingerprints.items())}}


def compare_hashseeds(target: str, seeds: Sequence[int] = (101, 202),
                      extra_pythonpath: Sequence[str] = (),
                      timeout: float = 600.0) -> HashseedReport:
    """Rerun ``target`` under distinctly pinned ``PYTHONHASHSEED`` values.

    ``target`` is a ``"package.module:callable"`` whose return value
    fingerprints (see :data:`_BOOTSTRAP`).  Each half runs in a fresh
    subprocess with its own hash seed — the only way to actually vary
    ``str``/``bytes`` hashing, which is fixed at interpreter start.  Equal
    fingerprints prove no hash-ordering leaks into the merged results.
    """
    if len(set(seeds)) < 2:
        raise ValueError("need at least two distinct PYTHONHASHSEED values")
    src_dir = Path(__file__).resolve().parents[2]
    pythonpath = os.pathsep.join(
        [str(src_dir), *map(str, extra_pythonpath)]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else []))
    report = HashseedReport(target=target, seeds=tuple(seeds))
    for seed in seeds:
        env = dict(os.environ,
                   PYTHONHASHSEED=str(seed), PYTHONPATH=pythonpath)
        proc = subprocess.run(
            [sys.executable, "-c", _BOOTSTRAP, target],
            env=env, capture_output=True, text=True, timeout=timeout)
        if proc.returncode != 0:
            raise RuntimeError(
                f"hashseed half PYTHONHASHSEED={seed} failed "
                f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
        for line in proc.stdout.splitlines():
            if line.startswith("DETSAN-FINGERPRINT "):
                report.fingerprints[seed] = line.split(" ", 1)[1].strip()
                break
        else:
            raise RuntimeError(
                f"hashseed half PYTHONHASHSEED={seed} printed no fingerprint:"
                f"\n{proc.stdout.strip()}")
    return report


# ---------------------------------------------------------------------------
# canonical scenario targets (importable from the subprocess halves)


def quickstart_fingerprint() -> str:
    """Merged fingerprint of a small run over ``quickstart_config``."""
    from ..core import quickstart_config
    from ..sweep import ScenarioSpec

    spec = ScenarioSpec(
        key="hashseed/quickstart", runner="first",
        model="Qwen/Qwen2.5-7B-Instruct", num_requests=16,
        params={"deployment": quickstart_config(generate_text=False),
                "rate": 2.0})
    return spec.run()["mergeable"].fingerprint()


def partitioned_fingerprint() -> str:
    """Fingerprint of a small partitioned 2-worker federated scenario.

    This is the ``hashseed-determinism`` CI target: two clusters sharded
    across two spawn workers, so the merged fingerprint covers boundary
    serialization, window planning and cross-partition merge order — the
    surfaces where hash-ordering bugs would hide.
    """
    from ..parallel import FederatedScenario, PartitionedDeployment

    scenario = FederatedScenario.demo(clusters=2, num_requests=12)
    return PartitionedDeployment(scenario, workers=2).run().fingerprint


# ---------------------------------------------------------------------------
# CLI: python -m repro.analysis.detsan --target mod:callable --seeds 101 202


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.detsan",
        description="rerun a scenario under two PYTHONHASHSEED values and "
                    "diff the merged fingerprints")
    parser.add_argument("--target",
                        default="repro.analysis.detsan:partitioned_fingerprint",
                        help="module:callable producing a fingerprintable "
                             "result (default: the partitioned 2-worker "
                             "federation scenario)")
    parser.add_argument("--seeds", type=int, nargs=2, default=(101, 202),
                        metavar=("SEED_A", "SEED_B"),
                        help="the two PYTHONHASHSEED values to pin")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here as well")
    args = parser.parse_args(argv)

    report = compare_hashseeds(args.target, seeds=tuple(args.seeds))
    text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n", encoding="utf-8")
    if not report.ok:
        print("hashseed-determinism: FINGERPRINT MISMATCH", file=sys.stderr)
        return 1
    print("hashseed-determinism: fingerprints identical across "
          f"PYTHONHASHSEED={args.seeds[0]} and {args.seeds[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
