"""detlint CLI: ``python -m repro.analysis src/ benchmarks/ examples/``.

Exit status 0 when every finding is fixed, pragma'd or baselined; 1 when
unsuppressed findings remain (the CI gate); 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import (
    LintEngine,
    apply_baseline,
    load_baseline,
    load_config,
    render_json,
    render_text,
)
from .rules import RULE_REGISTRY


def find_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml (falls back to ``start``)."""
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="detlint: determinism / architecture static analysis")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json is stable-sorted by "
                             "(path, line, rule))")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the report to this file (e.g. the "
                             "CI findings artifact)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="JSON baseline of accepted findings to suppress")
    parser.add_argument("--write-baseline", type=Path, default=None,
                        help="write current findings as a new baseline and "
                             "exit 0")
    parser.add_argument("--root", type=Path, default=None,
                        help="project root (default: nearest pyproject.toml)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULE_REGISTRY):
            print(f"{name}  {RULE_REGISTRY[name].description}")
        return 0

    root = (args.root or find_root(Path.cwd())).resolve()
    engine = LintEngine(load_config(root), root)
    findings = engine.lint(args.paths or ["src"])

    if args.write_baseline is not None:
        args.write_baseline.write_text(render_json(findings), encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {args.write_baseline}")
        return 0

    if args.baseline is not None:
        if not args.baseline.exists():
            print(f"baseline file not found: {args.baseline}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, load_baseline(args.baseline))

    report = render_json(findings) if args.format == "json" else (
        render_text(findings) + ("\n" if findings else ""))
    if args.output is not None:
        # The artifact is always the machine-readable form.
        args.output.write_text(render_json(findings), encoding="utf-8")
    sys.stdout.write(report)
    if findings:
        print(f"detlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
