"""detlint rules: the repository's determinism conventions, machine-checked.

Each rule is an :class:`ast.NodeVisitor` taking the shared
:class:`~repro.analysis.engine.FileContext`; the engine instantiates and
runs every registered rule over each file.  Register new rules with
:func:`register` — the registry is what the CLI, tests and docs enumerate.

The rule set encodes why the repo's bit-identical-results invariant holds:

=========  ==============================================================
DET001     no wall-clock reads (``time.time``/``perf_counter``/...)
           outside the reasoned profiling allowlist
DET002     no global ``random`` / ``numpy.random`` state — randomness
           routes through :class:`repro.common.RandomSource`
DET003     no builtin ``hash()`` — its value depends on
           ``PYTHONHASHSEED``; use :func:`repro.common.stable_seed`
DET004     no iteration / ``sum()`` accumulation over sets in sim-path
           packages — set order depends on ``PYTHONHASHSEED``
DET005     no lambdas / nested callables in ``ScenarioSpec`` /
           ``SweepSpec`` / ``BoundaryMessage`` payloads (must pickle)
ARCH001    ``obs/`` is observe-only: no event scheduling, no sim RNG
ARCH002    gateway behavior lands as middleware, not new
           ``InferenceGatewayAPI`` methods
=========  ==============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Type

from .engine import FileContext

__all__ = ["RULE_REGISTRY", "Rule", "register"]

RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    RULE_REGISTRY[cls.name] = cls
    return cls


class Rule(ast.NodeVisitor):
    """Base rule: a NodeVisitor bound to the file context."""

    name = "RULE"
    description = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx

    def add(self, node: ast.AST, message: str) -> None:
        self.ctx.add(node, self.name, message)


# ---------------------------------------------------------------------------
# DET001 — wall clock

#: Resolved dotted names that read the host's wall clock.  Simulated time is
#: the only clock the sim path may consult; wall time changes run-to-run and
#: silently breaks fingerprint equality when it leaks into results.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    name = "DET001"
    description = ("wall-clock read outside the profiling allowlist "
                   "([tool.detlint.allow_wallclock])")

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.wallclock_reason is None:
            resolved = self.ctx.imports.resolve(node.func)
            if resolved in _WALL_CLOCK:
                self.add(node, f"wall-clock call {resolved}() on the simulated-"
                               "time path; use Environment.now, or add a "
                               "reasoned [tool.detlint.allow_wallclock] entry "
                               "for a wall-profiling module")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET002 — global randomness

#: stdlib ``random`` module-level functions (they share one hidden global
#: ``Random`` instance — any draw perturbs every later draw in the process).
#: ``random.Random(seed)`` *instances* are fine: they are explicit, seeded
#: and hash-independent (the numpy-free kernel benchmarks rely on that).
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "seed", "uniform", "gauss", "normalvariate", "expovariate",
    "lognormvariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "binomialvariate", "getstate", "setstate",
}


@register
class GlobalRandomRule(Rule):
    name = "DET002"
    description = ("global random / numpy.random use outside "
                   "common/randomness.py (route through RandomSource)")

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.is_randomness_module:
            resolved = self.ctx.imports.resolve(node.func)
            if resolved is not None:
                if resolved.startswith("numpy.random."):
                    self.add(node, f"{resolved}() bypasses RandomSource; use "
                                   "RandomSource(seed) / spawn_named(key) from "
                                   "repro.common.randomness")
                else:
                    module, _, fn = resolved.rpartition(".")
                    if module == "random" and fn in _GLOBAL_RANDOM_FNS:
                        self.add(node, f"global random.{fn}() draws from hidden "
                                       "process-wide state; use a seeded "
                                       "RandomSource (or an explicit "
                                       "random.Random(seed) instance)")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET003 — builtin hash()


@register
class BuiltinHashRule(Rule):
    name = "DET003"
    description = "builtin hash() is PYTHONHASHSEED-dependent; use stable_seed"

    def visit_Call(self, node: ast.Call) -> None:
        if (not self.ctx.is_randomness_module
                and isinstance(node.func, ast.Name) and node.func.id == "hash"
                and node.func.id not in self.ctx.imports.aliases):
            self.add(node, "hash() on str/bytes/composites changes per process "
                           "under PYTHONHASHSEED; derive keys/seeds with "
                           "repro.common.stable_seed instead")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET004 — unordered iteration in sim-path packages

_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class _Scope:
    """Names bound to set values inside one function (shallow inference)."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    target = node
    if isinstance(target, ast.Subscript):  # Set[int] / set[int] / FrozenSet[...]
        target = target.value
    return (isinstance(target, ast.Name)
            and target.id in {"set", "frozenset", "Set", "FrozenSet",
                              "AbstractSet", "MutableSet"})


@register
class UnorderedIterationRule(Rule):
    name = "DET004"
    description = ("iteration / sum() over a set in a sim-path package "
                   "(set order depends on PYTHONHASHSEED); sort first")

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)
        self._scopes: List[_Scope] = [_Scope()]

    # -- set-expression classification ------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                # s.union(x) etc. is a set when the receiver is one.
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope.set_names for scope in self._scopes)
        return False

    # -- scope tracking ----------------------------------------------------
    def _scan_bindings(self, body: List[ast.stmt], scope: _Scope) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign) and self._is_set_expr(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        scope.set_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_is_set(stmt.annotation) or (
                        stmt.value is not None and self._is_set_expr(stmt.value)):
                    scope.set_names.add(stmt.target.id)

    def _visit_function(self, node) -> None:
        scope = _Scope()
        self._scan_bindings(node.body, scope)
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if _annotation_is_set(arg.annotation):
                scope.set_names.add(arg.arg)
        self._scopes.append(scope)
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Module(self, node: ast.Module) -> None:
        self._scan_bindings(node.body, self._scopes[0])
        self.generic_visit(node)

    # -- the checks --------------------------------------------------------
    def _check_iter(self, node: ast.AST, iter_expr: ast.AST, what: str) -> None:
        if self.ctx.is_sim_path and self._is_set_expr(iter_expr):
            self.add(node, f"{what} over a set iterates in PYTHONHASHSEED-"
                           "dependent order; iterate sorted(...) (or an "
                           "insertion-ordered dict/list) on the sim path")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter, "for-loop")
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from unordered input is fine (the result is a set
        # either way); only *consuming* set order is hazardous.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # sum() accumulates floats in iteration order — order-dependent
        # rounding.  min/max/len/sorted/any/all are order-independent.
        if (isinstance(node.func, ast.Name) and node.func.id == "sum"
                and node.args and self.ctx.is_sim_path
                and self._is_set_expr(node.args[0])):
            self.add(node, "sum() over a set accumulates floats in "
                           "PYTHONHASHSEED-dependent order; sum(sorted(...)) "
                           "pins the rounding")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET005 — pickle-unsafe sweep / boundary payloads

#: Constructors whose payloads cross process boundaries (spawn workers pick
#: them up with a fresh interpreter, so everything must pickle by value or
#: by importable reference).
_PICKLED_SPECS = {"ScenarioSpec", "SweepSpec", "BoundaryMessage"}


@register
class PickleUnsafeRule(Rule):
    name = "DET005"
    description = ("lambda / nested callable passed into ScenarioSpec / "
                   "SweepSpec / BoundaryMessage (won't pickle to spawn workers)")

    def __init__(self, ctx: FileContext):
        super().__init__(ctx)
        #: Stack of sets of names bound to non-picklable locals (nested
        #: defs, classes and lambdas) per enclosing function.
        self._local_defs: List[Set[str]] = []

    def _visit_function(self, node) -> None:
        locals_here: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                locals_here.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        locals_here.add(target.id)
        self._local_defs.append(locals_here)
        self.generic_visit(node)
        self._local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_unpicklable(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and any(
                value.id in defs for defs in self._local_defs):
            return f"locally-defined callable {value.id!r}"
        if isinstance(value, ast.Dict):
            for inner in value.values:
                if inner is not None and self._is_unpicklable(inner):
                    return f"{self._is_unpicklable(inner)} (inside a dict value)"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        ctor = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if ctor in _PICKLED_SPECS:
            for value in list(node.args) + [kw.value for kw in node.keywords]:
                what = self._is_unpicklable(value)
                if what:
                    self.add(value, f"{ctor} payload carries {what}; spawn "
                                    "workers re-import cells, so pass a "
                                    "module-level callable or a registered "
                                    "runner name instead")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# ARCH001 — obs/ is observe-only

#: Environment methods that spend simulated time or create events.
_SCHEDULING_ATTRS = {"schedule", "schedule_at", "timeout", "timeout_at",
                     "process"}
#: RandomSource draw methods: a draw from an observe-only layer perturbs
#: the sim's RNG streams, so results would differ with observability on.
_RNG_DRAW_ATTRS = {"uniform", "exponential", "lognormal", "integers",
                   "normal", "jitter", "choice"}


@register
class ObserveOnlyRule(Rule):
    name = "ARCH001"
    description = ("obs/ module schedules sim events or draws RNG "
                   "(the observability plane must be observe-only)")

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.is_observe_only and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _SCHEDULING_ATTRS:
                self.add(node, f".{attr}() creates simulated-time work from an "
                               "observe-only layer; obs code may read env.now "
                               "but never schedule (results must be "
                               "bit-identical with observability off)")
            elif attr in _RNG_DRAW_ATTRS:
                self.add(node, f".{attr}() draws randomness from an observe-"
                               "only layer; sampling decisions must come from "
                               "stable_seed hashing or a dedicated sampler "
                               "stream, never the sim's RandomSource streams")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# ARCH002 — gateway behavior goes in as middleware


@register
class GatewayApiRule(Rule):
    name = "ARCH002"
    description = ("new InferenceGatewayAPI method (gateway behavior belongs "
                   "in GatewayConfig.middleware_factories)")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        config = self.ctx.config
        if (self.ctx.path == config.gateway_api_file
                and node.name == config.gateway_api_class
                and config.gateway_api_methods):
            allowed = set(config.gateway_api_methods)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and stmt.name not in allowed:
                    self.add(stmt, f"method {stmt.name}() is not in the "
                                   "committed InferenceGatewayAPI roster "
                                   "([tool.detlint] gateway_api_methods); new "
                                   "request behavior belongs in a pipeline "
                                   "stage via GatewayConfig."
                                   "middleware_factories")
        self.generic_visit(node)
