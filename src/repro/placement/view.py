"""The placement plane's shared fleet view.

Before Federation v2, every consumer of fleet state kept a private one:
the federation router probed ``FacilityStatusProvider`` generators per
request, the autoscaler sampled its own ``MetricsFeed``, the gateway kept
rolling latency windows, and the cluster scheduler accounted GPU-seconds —
four views of the same fleet that could not see one another.

:class:`TopologyView` aggregates all of those signals per
(model, endpoint, cluster) into :class:`PoolSignal` / :class:`ClusterSignal`
snapshots that routing policies, the federation-aware scaling policy and the
reservation admission stage all read.  Signals are refreshed *incrementally
on events*: every endpoint pool notifies the view when its state changes
(task arrival/completion, instance ready/retired, drain start/end), the
affected signal is marked dirty, and the next read recomputes just that one
snapshot.  Reads between events are plain dict lookups — nothing is rebuilt
per request.

The view also owns the federation's *public* cluster-status query
(:meth:`query_cluster`), preserving the paper's §4.5 semantics — a simulated
web-service round-trip against a periodically refreshed status page — so the
verbatim priority rule keeps its ablation timing bit-identically.

Per-tenant capacity reservations live here too: the view tracks reserved
slots and admitted in-flight requests per (model, tenant), and
:meth:`try_admit` implements the admission arithmetic the gateway's
reservation middleware enforces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..serving import InstanceState
from ..sim import Environment

__all__ = ["PoolSignal", "ClusterSignal", "TopologyView"]


@dataclass
class PoolSignal:
    """One (model, endpoint, cluster) snapshot of the fleet view."""

    model: str
    endpoint_id: str
    cluster: str
    ready_instances: int
    starting_instances: int
    draining_instances: int
    queued_jobs: int
    waiting_tasks: int
    in_flight_tasks: int
    slots_per_instance: int
    max_instances: int
    cold_start_estimate_s: float
    #: Gateway-observed rolling medians (None until traffic produced them).
    latency_p50_s: Optional[float] = None
    ttft_p50_s: Optional[float] = None
    itl_p50_s: Optional[float] = None
    #: Simulation time this snapshot was computed.
    computed_at: float = 0.0

    @property
    def state(self) -> str:
        """Aggregate state, matching ``ModelPoolStatus.state`` exactly."""
        if self.ready_instances > 0:
            return "running"
        if self.draining_instances > 0:
            return "draining"
        if self.starting_instances > 0:
            return "starting"
        if self.queued_jobs > 0:
            return "queued"
        return "cold"

    @property
    def active(self) -> bool:
        """The paper's rule-1 predicate: running, starting or queued."""
        return self.state in ("running", "starting", "queued")

    @property
    def ready_slots(self) -> int:
        return self.ready_instances * self.slots_per_instance

    @property
    def provisionable_slots(self) -> int:
        """Slot capacity the pool could reach at its instance ceiling."""
        return self.max_instances * self.slots_per_instance

    @property
    def busy_fraction(self) -> float:
        """Demand over ready slot capacity (> 1 when work queues)."""
        demand = self.in_flight_tasks + self.waiting_tasks
        if self.ready_slots <= 0:
            return 0.0 if demand == 0 else float("inf")
        return demand / self.ready_slots

    @property
    def queue_per_ready(self) -> float:
        if self.ready_instances <= 0:
            return float("inf") if self.waiting_tasks else 0.0
        return self.waiting_tasks / self.ready_instances


@dataclass
class ClusterSignal:
    """Scheduler-side snapshot of one cluster."""

    cluster: str
    total_nodes: int
    free_nodes: int
    queued_jobs: int
    running_jobs: int
    #: GPU-seconds consumed by every job this cluster's scheduler started —
    #: the cost axis federation benchmarks trade against latency.
    gpu_seconds: float
    computed_at: float = 0.0


class TopologyView:
    """Event-refreshed aggregate of routing/scaling/reservation signals.

    The view subscribes to a :class:`~repro.federation.FederationRegistry`:
    every registered endpoint's pools are hooked as observers (and unhooked
    on deregistration), and any pool policy exposing ``bind_topology`` —
    e.g. :class:`repro.autoscale.FederationScalingPolicy` — is bound to the
    shared view so cross-cluster scaling and routing read the same state.
    """

    def __init__(self, env: Optional[Environment], registry, gateway_metrics=None,
                 refresh_interval_s: float = 5.0):
        #: May start ``None`` for a view over an empty registry (legacy
        #: ``Router(registry)`` construction order); captured from the first
        #: registered endpoint.
        self.env = env
        self.registry = registry
        #: Set post-assembly by the deployment (the gateway is built after
        #: the view); signals work without it, just without latency medians.
        self.gateway_metrics = gateway_metrics
        #: Staleness bound for signals whose drift has no event (the gateway
        #: medians move with every completed request).
        self.refresh_interval_s = refresh_interval_s

        self._pools: Dict[Tuple[str, str], object] = {}
        self._signals: Dict[Tuple[str, str], PoolSignal] = {}
        #: Signals for pools living in *other partitions* (see
        #: :meth:`apply_partition_snapshot`): refreshed at window barriers
        #: from serialized snapshots instead of in-process observer hooks.
        self._remote_signals: Dict[Tuple[str, str], PoolSignal] = {}
        self._dirty: set = set()
        self._cluster_cache: Dict[str, ClusterSignal] = {}
        self._providers: Dict[str, object] = {}

        # -- reservations: model -> tenant -> slots / admitted in flight ----
        self._reservations: Dict[str, Dict[str, int]] = {}
        self._admitted: Dict[str, Counter] = {}
        self.admissions = 0
        self.rejections = 0

        #: Observability: how many snapshots were actually recomputed (tests
        #: assert reads between events do not rebuild).
        self.rebuilds = 0
        self.reads = 0

        registry.subscribe(self)
        for entry in registry.entries:
            self.on_register(entry)

    # ------------------------------------------------------------- registry hooks
    @classmethod
    def over(cls, registry) -> "TopologyView":
        """Build a view over a registry (compat shim for legacy
        ``Router(registry)`` call sites; the deployment wires one properly).

        An empty registry is fine — the simulation environment is captured
        from the first endpoint that registers.
        """
        env = registry.entries[0].endpoint.env if registry.entries else None
        return cls(env, registry)

    def on_register(self, entry) -> None:
        """Registry hook: start observing a newly federated endpoint."""
        endpoint = entry.endpoint
        if self.env is None:
            self.env = endpoint.env
        self._providers[endpoint.endpoint_id] = entry.status_provider
        for pool in endpoint.pools.values():
            key = (endpoint.endpoint_id, pool.model)
            if key in self._pools:
                continue
            self._pools[key] = pool
            self._dirty.add(key)
            pool.add_observer(self._on_pool_event)
            policy = getattr(pool.replicas, "policy", None)
            if policy is not None and hasattr(policy, "bind_topology"):
                policy.bind_topology(
                    self,
                    endpoint_id=endpoint.endpoint_id,
                    cluster=endpoint.cluster_name,
                    model=pool.model,
                )

    def on_deregister(self, entry) -> None:
        """Registry hook: drop an endpoint's signals (facility going dark)."""
        endpoint_id = entry.endpoint.endpoint_id
        self._providers.pop(endpoint_id, None)
        for key in [k for k in self._pools if k[0] == endpoint_id]:
            pool = self._pools.pop(key)
            pool.remove_observer(self._on_pool_event)
            self._signals.pop(key, None)
            self._dirty.discard(key)
            # Unbind federation-aware policies: a dark endpoint must not keep
            # pre-warming replicas for siblings it can no longer serve.
            policy = getattr(pool.replicas, "policy", None)
            if policy is not None and hasattr(policy, "unbind_topology"):
                policy.unbind_topology()

    def _on_pool_event(self, pool) -> None:
        self._dirty.add((pool.endpoint.endpoint_id, pool.model))

    # ------------------------------------------------------------- pool signals
    def pool_signal(self, endpoint_id: str, model: str) -> Optional[PoolSignal]:
        """Current signal for one (endpoint, model) pool; ``None`` if the
        endpoint left the federation or never hosted the model."""
        key = (endpoint_id, model)
        pool = self._pools.get(key)
        if pool is None:
            return self._remote_signals.get(key)
        self.reads += 1
        cached = self._signals.get(key)
        if (
            cached is not None
            and key not in self._dirty
            and self.env.now - cached.computed_at < self.refresh_interval_s
        ):
            return cached
        signal = self._compute(pool)
        self._signals[key] = signal
        self._dirty.discard(key)
        self.rebuilds += 1
        return signal

    def _compute(self, pool) -> PoolSignal:
        endpoint = pool.endpoint
        latency_p50 = ttft_p50 = itl_p50 = None
        if self.gateway_metrics is not None:
            # Per-endpoint windows: each pool is judged on the latency of
            # the requests *it* served, not the fleet-wide blend.
            recent = self.gateway_metrics.recent_timings(
                pool.model, endpoint.endpoint_id
            )
            if recent:
                latency_p50 = recent.get("latency_p50_s")
                ttft_p50 = recent.get("ttft_p50_s")
                itl_p50 = recent.get("itl_p50_s")
        return PoolSignal(
            model=pool.model,
            endpoint_id=endpoint.endpoint_id,
            cluster=endpoint.cluster_name,
            ready_instances=len(pool.ready_instances),
            starting_instances=sum(
                1 for i in pool.instances if i.state == InstanceState.STARTING
            ),
            draining_instances=len(pool.draining),
            queued_jobs=pool.queued_job_launches,
            waiting_tasks=pool.waiting_tasks,
            in_flight_tasks=pool.in_flight_tasks,
            slots_per_instance=pool.slots_per_instance,
            max_instances=pool.replicas.max_instances,
            cold_start_estimate_s=pool.cold_start_estimate_s,
            latency_p50_s=latency_p50,
            ttft_p50_s=ttft_p50,
            itl_p50_s=itl_p50,
            computed_at=self.env.now,
        )

    # ------------------------------------------------------------- partition snapshots
    def apply_partition_snapshot(self, snapshot: dict) -> PoolSignal:
        """Refresh one remote pool's signal from a partition barrier snapshot.

        In a partitioned deployment (:mod:`repro.parallel`) the cluster's
        pools live in another process, so the usual in-process observer
        hooks cannot mark signals dirty.  Instead each cluster partition
        serializes its pool state at every window barrier and the gateway
        partition feeds the dicts through here.  The resulting signals are
        served by :meth:`pool_signal` / :meth:`signals_for_model` exactly
        like local ones — routing policies and the relay's boundary proxies
        cannot tell the difference (beyond the window-granular staleness,
        which the serial fallback reproduces identically).
        """
        signal = PoolSignal(**snapshot)
        self._remote_signals[(signal.endpoint_id, signal.model)] = signal
        return signal

    def remote_signals(self) -> List[PoolSignal]:
        """Signals applied via :meth:`apply_partition_snapshot`, in a
        deterministic (endpoint, model) order."""
        return [self._remote_signals[k] for k in sorted(self._remote_signals)]

    def candidates(self, model: str) -> List[Tuple[object, Optional[PoolSignal]]]:
        """(entry, signal) pairs for every endpoint hosting ``model``, in the
        registry's priority order."""
        return [
            (entry, self.pool_signal(entry.endpoint_id, model))
            for entry in self.registry.endpoints_for_model(model)
        ]

    def signals_for_model(self, model: str) -> List[PoolSignal]:
        signals = [sig for _entry, sig in self.candidates(model) if sig is not None]
        # Remote pools are not federation-registry entries; append their
        # snapshot signals in deterministic key order.
        signals.extend(
            self._remote_signals[key]
            for key in sorted(self._remote_signals)
            if key[1] == model and key not in self._pools
        )
        return signals

    # ------------------------------------------------------------- cluster signals
    def cluster_signal(self, endpoint_id: str) -> Optional[ClusterSignal]:
        """Synchronous, event-fresh cluster snapshot (no query latency).

        Memoised per simulation timestamp: many routing decisions at the
        same instant share one free-node count.
        """
        provider = self._providers.get(endpoint_id)
        if provider is None:
            return None
        name = provider.cluster_name
        cached = self._cluster_cache.get(name)
        if cached is not None and cached.computed_at == self.env.now:
            return cached
        status = provider.snapshot()
        signal = ClusterSignal(
            cluster=name,
            total_nodes=status.total_nodes,
            free_nodes=status.free_nodes,
            queued_jobs=status.queued_jobs,
            running_jobs=status.running_jobs,
            gpu_seconds=provider.scheduler.gpu_seconds(),
            computed_at=self.env.now,
        )
        self._cluster_cache[name] = signal
        return signal

    def query_cluster(self, entry):
        """Simulation process: the federation's *public* status query.

        Delegates to the endpoint's :class:`FacilityStatusProvider`, keeping
        the paper's query latency and staleness window — the verbatim
        priority rule routes through here so its ablation numbers stay
        bit-identical.
        """
        provider = self._providers.get(entry.endpoint_id, entry.status_provider)
        status = yield from provider.query()
        return status

    # ------------------------------------------------------------- reservations
    def reserve(self, tenant: str, model: str, slots: int) -> None:
        """Reserve ``slots`` concurrent requests of ``model`` for ``tenant``."""
        if slots <= 0:
            raise ValueError("reserved slots must be > 0")
        self._reservations.setdefault(model, {})[tenant] = slots

    def release_reservation(self, tenant: str, model: str) -> None:
        self._reservations.get(model, {}).pop(tenant, None)

    def reservations_for(self, model: str) -> Dict[str, int]:
        return dict(self._reservations.get(model, {}))

    def admitted(self, model: str, tenant: str) -> int:
        return self._admitted.get(model, Counter())[tenant]

    def fleet_slot_capacity(self, model: str) -> int:
        """Slot capacity the federation can provision for ``model`` (sum of
        every hosting pool's instance ceiling x slots per instance)."""
        total = 0
        for entry in self.registry.endpoints_for_model(model):
            signal = self.pool_signal(entry.endpoint_id, model)
            if signal is not None:
                total += signal.provisionable_slots
        return total

    def reserved_headroom(self, model: str) -> int:
        """Reserved-but-unused slots that best-effort traffic must not eat."""
        admitted = self._admitted.get(model, Counter())
        return sum(
            max(0, slots - admitted[tenant])
            for tenant, slots in self._reservations.get(model, {}).items()
        )

    def try_admit(self, model: str, tenant: str) -> bool:
        """Admit one request against the model's reserved capacity.

        A tenant is always admitted inside its own reservation.  Anything
        beyond that (unreserved tenants, or a reserved tenant's overflow) is
        best-effort: admitted only while total in-flight plus the
        reserved-but-unused headroom fits the fleet's provisionable slots.
        The caller must pair a ``True`` return with :meth:`release_admission`.
        """
        admitted = self._admitted.setdefault(model, Counter())
        reserved = self._reservations.get(model, {}).get(tenant, 0)
        if admitted[tenant] < reserved:
            admitted[tenant] += 1
            self.admissions += 1
            return True
        total = sum(admitted.values())
        if total + self.reserved_headroom(model) < self.fleet_slot_capacity(model):
            admitted[tenant] += 1
            self.admissions += 1
            return True
        self.rejections += 1
        return False

    def release_admission(self, model: str, tenant: str) -> None:
        admitted = self._admitted.get(model)
        if admitted is not None and admitted[tenant] > 0:
            admitted[tenant] -= 1

    # ------------------------------------------------------------- observability
    def snapshot(self) -> dict:
        """Summary for dashboards/tests."""
        return {
            "pools": len(self._pools),
            "rebuilds": self.rebuilds,
            "reads": self.reads,
            "reservations": {
                model: dict(res) for model, res in self._reservations.items()
            },
            "admissions": self.admissions,
            "rejections": self.rejections,
        }
