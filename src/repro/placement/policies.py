"""Placement policies: federation routing over the shared TopologyView.

Federation v2 rebuilds the router hierarchy on the placement plane: a
:class:`PlacementPolicy` is a :class:`~repro.federation.FederationRouter`
whose ``_choose`` reads event-refreshed :class:`~repro.placement.PoolSignal`
snapshots instead of probing endpoint/scheduler state privately.

* :class:`PriorityRouter` — the paper's §4.5 three-rule algorithm, verbatim:
  rule 1 now reads the view's pool signals (equivalent to the old per-request
  ``endpoint.model_status`` probe) and rule 2 still pays the public
  status-query latency through :meth:`TopologyView.query_cluster`, so the
  ablation benchmark reproduces bit-identically.
* :class:`LeastLoadedRouter` — picks the ready candidate with the lowest
  load (busy fraction, then queue per ready instance); entirely synchronous
  because the view is already warm.
* :class:`SLORouter` — scores candidates by predicted TTFT against a
  per-tenant latency SLO and sheds to a secondary cluster while the
  primary's observed p50 breaches it, with hold-based hysteresis so the
  shed/recover transitions cannot flap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..federation.registry import FederationRegistry
from ..federation.router import FederationRouter
from .view import PoolSignal, TopologyView

__all__ = ["PlacementPolicy", "PriorityRouter", "LeastLoadedRouter", "SLORouter"]


class PlacementPolicy(FederationRouter):
    """Router over the shared view instead of private state probes.

    Accepts either a :class:`TopologyView` (the deployment wires one) or a
    bare :class:`FederationRegistry` — legacy ``Router(registry)`` call
    sites get a view built over the registry transparently.
    """

    policy_name = "placement"

    def __init__(self, view, max_decisions: int = 512):
        if isinstance(view, FederationRegistry):
            view = TopologyView.over(view)
        self.view: TopologyView = view
        super().__init__(view.registry, max_decisions=max_decisions)

    def _cold_fallback(self, candidates, signals):
        """No pool is ready anywhere: prefer one already coming up, then a
        cluster with free nodes (event-fresh signal, no query latency),
        then the first configured endpoint."""
        for entry, sig in signals:
            if sig is not None and sig.active:
                return entry, "active-instance"
        for entry, _sig in signals:
            cluster = self.view.cluster_signal(entry.endpoint_id)
            if cluster is not None and cluster.free_nodes > 0:
                return entry, "free-nodes"
        return candidates[0], "first-configured"


class PriorityRouter(PlacementPolicy):
    """The paper's priority-based selection algorithm (§4.5), view-backed."""

    policy_name = "priority"

    def _choose(self, model: str, candidates, tenant: Optional[str] = None):
        # Rule 1: model already running or queued somewhere — the pool
        # signals are event-fresh, no per-request endpoint probe needed.
        for entry in candidates:
            signal = self.view.pool_signal(entry.endpoint_id, model)
            if signal is not None and signal.active:
                return entry, "active-instance"
        # Rule 2: a cluster with available nodes, via the *public* status
        # query (latency + staleness preserved for ablation parity).
        for entry in candidates:
            status = yield from self.view.query_cluster(entry)
            if status.free_nodes > 0:
                return entry, "free-nodes"
        # Rule 3: the first endpoint configured for the model.
        return candidates[0], "first-configured"


class LeastLoadedRouter(PlacementPolicy):
    """Route to the least-loaded ready pool (queue depth / busy fraction)."""

    policy_name = "least-loaded"

    def _choose(self, model: str, candidates, tenant: Optional[str] = None):
        if False:  # pragma: no cover - keep generator form
            yield None
        signals = [
            (entry, self.view.pool_signal(entry.endpoint_id, model))
            for entry in candidates
        ]
        ready = [(e, s) for e, s in signals if s is not None and s.ready_instances > 0]
        if ready:
            entry, _sig = min(
                ready, key=lambda pair: (pair[1].busy_fraction, pair[1].queue_per_ready)
            )
            return entry, "least-loaded"
        return self._cold_fallback(candidates, signals)


@dataclass
class _ShedState:
    """Hysteresis bookkeeping for one (model, tenant) SLO lane."""

    shedding: bool = False
    breach_since: Optional[float] = None
    recover_since: Optional[float] = None
    transitions: List[Tuple[float, bool]] = field(default_factory=list)


class SLORouter(PlacementPolicy):
    """SLO-aware routing: predicted-TTFT scoring plus breach shedding.

    Every tenant has a latency SLO (``tenant_slos`` overriding
    ``default_slo_s``) interpreted against the gateway-observed p50 —
    streaming traffic is judged on TTFT, non-streaming on end-to-end
    latency.  While the primary (highest-priority) candidate's p50 breaches
    the SLO for ``breach_hold_s``, traffic sheds to the best-predicted
    secondary; it returns only after the primary's p50 has stayed below
    ``recover_ratio * slo`` for ``recover_hold_s``.  The two holds are the
    hysteresis that prevents shed/recover flapping.
    """

    policy_name = "slo"

    def __init__(self, view, default_slo_s: float = 15.0,
                 tenant_slos: Optional[Dict[str, float]] = None,
                 breach_hold_s: float = 20.0,
                 recover_ratio: float = 0.6,
                 recover_hold_s: float = 60.0,
                 max_decisions: int = 512):
        super().__init__(view, max_decisions=max_decisions)
        if default_slo_s <= 0:
            raise ValueError("default_slo_s must be > 0")
        if not 0.0 < recover_ratio <= 1.0:
            raise ValueError("recover_ratio must be in (0, 1]")
        self.default_slo_s = default_slo_s
        self.tenant_slos = dict(tenant_slos or {})
        self.breach_hold_s = breach_hold_s
        self.recover_ratio = recover_ratio
        self.recover_hold_s = recover_hold_s
        self._states: Dict[Tuple[str, Optional[str]], _ShedState] = {}

    # -- scoring ---------------------------------------------------------------
    def slo_for(self, tenant: Optional[str]) -> float:
        if tenant is not None and tenant in self.tenant_slos:
            return self.tenant_slos[tenant]
        return self.default_slo_s

    @staticmethod
    def observed_p50(signal: Optional[PoolSignal]) -> Optional[float]:
        """The signal the SLO is judged against: TTFT when streaming traffic
        produced one, end-to-end latency otherwise."""
        if signal is None:
            return None
        if signal.ttft_p50_s is not None:
            return signal.ttft_p50_s
        return signal.latency_p50_s

    def predicted_ttft(self, signal: Optional[PoolSignal]) -> float:
        """Predicted time-to-first-token on a candidate right now.

        A cold pool pays its measured cold start plus everything already
        queued; a warm pool's observed p50 is inflated by the current
        backlog over ready slot capacity.
        """
        if signal is None:
            return float("inf")
        if signal.ready_instances == 0:
            backlog = signal.waiting_tasks * 1.0
            return signal.cold_start_estimate_s + backlog
        observed = self.observed_p50(signal)
        if observed is None:
            # No traffic observed yet: an idle warm pool is as fast as one
            # engine iteration; approximate with the backlog factor alone.
            observed = 1.0
        return observed * max(1.0, signal.busy_fraction)

    # -- hysteresis -------------------------------------------------------------
    def _state(self, model: str, tenant: Optional[str]) -> _ShedState:
        return self._states.setdefault((model, tenant), _ShedState())

    def _update_hysteresis(self, state: _ShedState, observed: Optional[float],
                           slo: float) -> None:
        now = self.view.env.now
        if not state.shedding:
            if observed is not None and observed > slo:
                if state.breach_since is None:
                    state.breach_since = now
                if now - state.breach_since >= self.breach_hold_s:
                    state.shedding = True
                    state.recover_since = None
                    state.transitions.append((now, True))
            else:
                state.breach_since = None
        else:
            if observed is not None and observed <= slo * self.recover_ratio:
                if state.recover_since is None:
                    state.recover_since = now
                if now - state.recover_since >= self.recover_hold_s:
                    state.shedding = False
                    state.breach_since = None
                    state.transitions.append((now, False))
            else:
                state.recover_since = None

    # -- selection ---------------------------------------------------------------
    def _choose(self, model: str, candidates, tenant: Optional[str] = None):
        if False:  # pragma: no cover - keep generator form
            yield None
        signals = [
            (entry, self.view.pool_signal(entry.endpoint_id, model))
            for entry in candidates
        ]
        primary, primary_sig = signals[0]
        state = self._state(model, tenant)
        slo = self.slo_for(tenant)
        self._update_hysteresis(state, self.observed_p50(primary_sig), slo)

        ready = [(e, s) for e, s in signals if s is not None and s.ready_instances > 0]
        if not ready:
            return self._cold_fallback(candidates, signals)

        if state.shedding:
            # Shed to the best-predicted candidate — *including* cold
            # secondaries: routing there is what makes their reactive
            # scale-up bootstrap an instance, and their prediction already
            # charges the cold start plus queued backlog.
            scored = [(e, s) for e, s in signals if s is not None]
            entry, _sig = min(scored, key=lambda pair: self.predicted_ttft(pair[1]))
            if entry is primary:
                return primary, "slo-primary"
            return entry, "slo-shed"
        if primary_sig is not None and primary_sig.ready_instances > 0:
            return primary, "slo-primary"
        # Primary not ready (cold/draining): take the best predicted TTFT.
        entry, _sig = min(ready, key=lambda pair: self.predicted_ttft(pair[1]))
        return entry, "slo-best"

    def shed_transitions(self, model: str,
                         tenant: Optional[str] = None) -> List[Tuple[float, bool]]:
        """(time, shedding) transition log for flap analysis in tests."""
        return list(self._state(model, tenant).transitions)
