"""Placement plane (Federation v2).

One shared, event-refreshed view of the fleet (:class:`TopologyView`)
feeding three consumers that previously kept private state:

* routing — :class:`PriorityRouter` (the paper's §4.5 rule, verbatim),
  :class:`LeastLoadedRouter` and the SLO-aware :class:`SLORouter`;
* cross-cluster autoscaling — :class:`repro.autoscale.FederationScalingPolicy`
  binds to the view through ``bind_topology``;
* per-tenant capacity reservations — :class:`ReservationMiddleware`
  admits requests against reserved capacity tracked in the view.
"""

from .policies import LeastLoadedRouter, PlacementPolicy, PriorityRouter, SLORouter
from .reservations import ReservationMiddleware, ReservationMiddlewareFactory
from .view import ClusterSignal, PoolSignal, TopologyView

__all__ = [
    "TopologyView",
    "PoolSignal",
    "ClusterSignal",
    "PlacementPolicy",
    "PriorityRouter",
    "LeastLoadedRouter",
    "SLORouter",
    "ReservationMiddleware",
    "ReservationMiddlewareFactory",
]
