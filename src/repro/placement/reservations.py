"""Per-tenant capacity reservations as a gateway pipeline stage.

Reservations guarantee a tenant a number of concurrent in-flight requests
for a model, fleet-wide.  The bookkeeping (reserved slots, admitted
counters, the admission arithmetic) lives on the
:class:`~repro.placement.TopologyView`; this middleware is the enforcement
point on the gateway's request path.

It composes like every other API v2 stage — insert it via
``GatewayConfig.middleware_factories`` right after the auth stage (it needs
the authenticated tenant)::

    factories = default_middleware_factories()
    factories.insert(2, ReservationMiddleware.factory(view))
    config = GatewayConfig(middleware_factories=factories)

Models without reservations are untouched.  For reserved models, a tenant
is always admitted inside its reservation; overflow and unreserved tenants
are best-effort and rejected with a typed ``overloaded_error`` envelope
(:class:`~repro.common.CapacityError`) once admitting them would eat into
reserved-but-unused capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common import CapacityError, ConfigurationError
from .view import TopologyView

__all__ = ["ReservationMiddleware", "ReservationMiddlewareFactory"]


class ReservationMiddleware:
    """Admission control against the view's per-tenant reservations.

    Implements the gateway middleware protocol (``name`` +
    ``process(ctx, call_next)``) without importing the gateway package, so
    the placement plane stays a dependency of the gateway and not the other
    way round.
    """

    name = "reservation"

    def __init__(self, api, view: TopologyView):
        self.api = api
        self.view = view

    @classmethod
    def factory(cls, view: Optional[TopologyView] = None) -> "ReservationMiddlewareFactory":
        """Factory for ``GatewayConfig.middleware_factories``.

        Without an explicit view the stage binds to the gateway's own
        placement view (``api.topology``, wired by the deployment) at
        pipeline-assembly time — and the factory is then a plain picklable
        value, so configs carrying it survive a pickle round-trip (sweep
        cells ship their deployment config to worker processes).
        """
        return ReservationMiddlewareFactory(view)

    def process(self, ctx, call_next):
        model = ctx.model_name
        tenant = ctx.request.user
        if not self.view.reservations_for(model):
            yield from call_next(ctx)
            return
        if not self.view.try_admit(model, tenant):
            raise CapacityError(
                f"capacity for {model} is reserved; tenant {tenant!r} has no "
                "reserved slots left and best-effort capacity is exhausted"
            )
        ctx.metadata["reservation_admitted"] = True
        try:
            yield from call_next(ctx)
        finally:
            self.view.release_admission(model, tenant)


@dataclass
class ReservationMiddlewareFactory:
    """Module-level, picklable ``middleware_factories`` entry.

    ``view=None`` (the picklable form) resolves the gateway's own placement
    view at pipeline-assembly time; an explicit view pins the stage to that
    view but ties the factory to live simulation state.
    """

    view: Optional[TopologyView] = None

    def __call__(self, api) -> ReservationMiddleware:
        resolved = self.view if self.view is not None else getattr(api, "topology", None)
        if resolved is None:
            raise ConfigurationError(
                "ReservationMiddleware needs a TopologyView: pass one to "
                "factory(view) or deploy with a placement plane"
            )
        return ReservationMiddleware(api, resolved)
