"""Conservative window planning (the PDES synchronization core).

Each round, every partition reports the earliest time it could next commit
an event (its *bound*: the head of its pending queue, folded with the
arrival times of boundary messages routed to it but not yet delivered).
The planner then picks the next window:

* **exclusive window** — all partitions may safely process events strictly
  before ``horizon = min over partitions of (bound + lookahead)``, where a
  partition's *lookahead* is the minimum transfer latency on its outgoing
  edges.  Any message a partition generates at ``t`` carries
  ``arrival >= t + lookahead >= bound + lookahead >= horizon``, so nothing
  delivered at the next barrier can land inside the window: barrier
  delivery is causal and every partition can run independently.

* **inclusive micro-window** — when some blocking edge has zero lookahead
  the horizon degenerates to the global minimum bound ``t_min`` and an
  exclusive window would commit nothing.  Instead all partitions process
  events *at exactly* ``t_min`` (time cannot move past it), exchanging any
  same-instant messages at the barrier.  This is the synchronous-window
  form of Chandy–Misra null messages: each round commits at least one
  event globally, so zero-lookahead edges throttle the window size but can
  never deadlock.

The plan is a pure function of the reported bounds, so every worker layout
replays the identical window sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Window", "WindowStats", "plan_window"]

_INF = float("inf")


@dataclass(frozen=True)
class Window:
    """One synchronization round: advance everything to ``time``."""

    time: float
    #: True for a null-message micro-window (commit events *at* ``time``);
    #: False for a normal exclusive window (commit strictly before).
    inclusive: bool


@dataclass
class WindowStats:
    """Window/overhead breakdown surfaced in results and BENCH_parallel."""

    windows: int = 0
    micro_windows: int = 0
    messages: int = 0
    #: Wall-clock seconds inside partition advances (the parallel part).
    advance_wall_s: float = 0.0
    #: Wall-clock seconds in barrier exchange + planning (the serial part).
    sync_wall_s: float = 0.0
    #: Per-kind message counts (dispatch/result/ping).
    message_kinds: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "windows": self.windows,
            "micro_windows": self.micro_windows,
            "messages": self.messages,
            "advance_wall_s": self.advance_wall_s,
            "sync_wall_s": self.sync_wall_s,
            "message_kinds": dict(sorted(self.message_kinds.items())),
        }


def plan_window(bounds: Dict[int, float],
                lookaheads: Dict[int, float]) -> Optional[Window]:
    """Next window for the reported per-partition bounds, or ``None`` when
    every partition is idle (the simulation is complete)."""
    horizon = _INF
    t_min = _INF
    for pid, bound in bounds.items():
        if bound < t_min:
            t_min = bound
        candidate = bound + lookaheads[pid]
        if candidate < horizon:
            horizon = candidate
    if t_min == _INF:
        return None
    if horizon <= t_min:
        # Some partition at the global minimum has zero outgoing lookahead:
        # an exclusive window to `horizon` would commit nothing.  Null-
        # message micro-window at t_min instead (see module docstring).
        return Window(time=t_min, inclusive=True)
    return Window(time=horizon, inclusive=False)
