"""Parallel federated simulation: event-horizon sharded clusters.

One federated deployment is split into per-cluster partitions, each owning
its own kernel :class:`~repro.sim.Environment` (any queue backend).  The
only cross-partition edges are relay transfers, whose wire latencies become
the conservative lookahead for synchronous-window PDES:

- :mod:`repro.parallel.boundary` — serialized boundary messages with
  deterministic ordering and causality validation;
- :mod:`repro.parallel.horizon` — window planning (exclusive windows plus
  inclusive zero-lookahead micro-windows: the null-message progress
  guarantee);
- :mod:`repro.parallel.partition` — gateway / cluster / ping partitions
  wrapping the existing relay, endpoint, and serving stacks;
- :mod:`repro.parallel.deployment` — the orchestrator
  (:class:`PartitionedDeployment`) with spawn workers and a serial
  ``workers=1`` fallback whose merged results are bit-identical to any
  worker count.
"""

from .boundary import DISPATCH, PING, RESULT, BoundaryMessage, sort_key, validate_arrival
from .deployment import (
    ClusterShardSpec,
    FederatedRunResult,
    FederatedScenario,
    PartitionedDeployment,
    golden_trace,
    run_partitions,
    run_ping_ring,
    trace_fingerprint,
)
from .horizon import Window, WindowStats, plan_window
from .partition import (
    PARTITION_KINDS,
    ClusterPartition,
    GatewayPartition,
    Partition,
    PartitionSpec,
    PingPartition,
    build_partition,
)

__all__ = [
    "BoundaryMessage",
    "DISPATCH",
    "RESULT",
    "PING",
    "sort_key",
    "validate_arrival",
    "Window",
    "WindowStats",
    "plan_window",
    "Partition",
    "PartitionSpec",
    "GatewayPartition",
    "ClusterPartition",
    "PingPartition",
    "PARTITION_KINDS",
    "build_partition",
    "ClusterShardSpec",
    "FederatedScenario",
    "FederatedRunResult",
    "PartitionedDeployment",
    "run_partitions",
    "run_ping_ring",
    "golden_trace",
    "trace_fingerprint",
]
