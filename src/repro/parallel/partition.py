"""Partition implementations: per-cluster shards of one federated deployment.

A partitioned run splits the federated topology at its relay edges:

* the **gateway partition** hosts the workload driver, the cloud relay and
  the placement plane's :class:`~repro.placement.TopologyView`; every
  remote cluster appears as a :class:`~repro.faas.RelayBoundaryProxy`
  answering the queue-depth dispatcher from barrier snapshots;
* one **cluster partition** per facility hosts the real
  :class:`~repro.faas.ComputeEndpoint` — scheduler, model pools, serving
  engines — and executes the tasks shipped across the boundary.

Each partition owns a private :class:`~repro.sim.Environment` (any
``queue=`` backend).  All partitions share one simulated clock by
construction: the conservative window scheme (:mod:`repro.parallel.horizon`)
only ever lets a partition run inside a window that no in-flight message can
land in, so ``env.now`` values interleave exactly as one global event queue
would have interleaved them.

Determinism notes (the bit-identical-across-worker-counts contract):

* randomness is keyed, never drawn from shared streams — the workload seed
  is ``stable_seed(seed, "workload")`` and every partition gets its own
  :meth:`~repro.common.RandomSource.spawn_named` stream keyed by partition
  name, a pure function of the scenario seed regardless of which worker
  builds it;
* boundary messages are delivered in :func:`~repro.parallel.boundary.sort_key`
  order, so event ids assigned during delivery are reproducible;
* barrier snapshots are applied in sorted source order before delivery, so
  routing reads window-granular state that the serial fallback reproduces
  identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..common import IdGenerator, RandomSource, stable_seed
from ..faas import (
    HANDLER_CHAT,
    ComputeEndpoint,
    EndpointConfig,
    ModelHostingConfig,
    RelayBoundaryProxy,
    RelayService,
)
from ..faas.functions import FunctionRegistry
from ..faas.task import TaskRecord, TaskStatus
from ..federation import FederationRegistry
from ..metrics import RequestRecord
from ..obs import MetricsRegistry
from ..placement import TopologyView
from ..serving import InstanceState
from ..serving.stream import STREAM_CHANNEL_KEY, StreamChannel, StreamEvent
from ..sim import Environment
from .boundary import DISPATCH, PING, RESULT, BoundaryMessage, sort_key, validate_arrival
from .horizon import Window

__all__ = [
    "PartitionSpec",
    "Partition",
    "GatewayPartition",
    "ClusterPartition",
    "PingPartition",
    "build_partition",
    "PARTITION_KINDS",
]

#: The one function id partitioned runs exercise (chat inference).
FUNCTION_ID = "fn-inference-chat"


class PartitionSpec:
    """Pickle-safe description of one partition (shipped to spawn workers)."""

    __slots__ = ("pid", "name", "kind", "lookahead_s", "kernel_queue", "seed",
                 "params")

    def __init__(self, pid: int, name: str, kind: str, lookahead_s: float,
                 kernel_queue: str = "heap", seed: int = 0,
                 params: Optional[Dict[str, Any]] = None):
        self.pid = pid
        self.name = name
        #: Key into :data:`PARTITION_KINDS`.
        self.kind = kind
        #: Minimum transfer latency on this partition's *outgoing* edges —
        #: the conservative lookahead the window planner relies on.
        self.lookahead_s = lookahead_s
        self.kernel_queue = kernel_queue
        self.seed = seed
        self.params = params or {}

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PartitionSpec(pid={self.pid}, name={self.name!r}, "
                f"kind={self.kind!r}, lookahead={self.lookahead_s})")


class Partition:
    """Base partition: an environment plus boundary in/out mechanics."""

    def __init__(self, spec: PartitionSpec):
        self.spec = spec
        self.pid = spec.pid
        self.name = spec.name
        self.env = Environment(queue=spec.kernel_queue)
        #: Partition-local random stream, keyed by name: a pure function of
        #: the scenario seed, independent of worker assignment or build
        #: order (numpy-backed; unused unless a partition draws from it).
        self._rng_seed = stable_seed(spec.seed, "partition", spec.name)
        self._outbox: List[BoundaryMessage] = []
        self._seq = 0

    def rng(self) -> RandomSource:
        return RandomSource(self._rng_seed)

    # -- boundary plumbing -------------------------------------------------
    def send(self, kind: str, dst: int, arrival_time: float,
             body: Dict[str, Any]) -> None:
        self._outbox.append(BoundaryMessage(kind=kind, src=self.pid, dst=dst,
                                            seq=self._seq,
                                            arrival_time=arrival_time,
                                            body=body))
        self._seq += 1

    def collect_outbox(self) -> List[BoundaryMessage]:
        out, self._outbox = self._outbox, []
        return out

    def deliver(self, messages: List[BoundaryMessage]) -> None:
        """Schedule inbound messages (the barrier hands them in already
        sorted; sorting again here keeps the method safe to call directly)."""
        for message in sorted(messages, key=sort_key):
            validate_arrival(message, self.env.now)
            self._deliver_one(message)

    def _deliver_one(self, message: BoundaryMessage) -> None:
        raise NotImplementedError

    # -- window protocol ---------------------------------------------------
    def bound(self) -> float:
        """Earliest time this partition could commit its next event."""
        return self.env.peek()

    def advance(self, window: Window) -> float:
        return self.env.run_until_horizon(window.time, inclusive=window.inclusive)

    def done(self) -> bool:
        """True once this partition no longer needs simulation to progress.

        The orchestrator stops when every partition is done and no boundary
        message is in flight.  The conservative default — no local events
        left — suits partitions whose pending events all matter (e.g. ping
        relays); shards with perpetual background timers (autoscaler ticks,
        pool maintenance) must override, otherwise the run never terminates.
        """
        return self.env.peek() == float("inf")

    def snapshots(self) -> List[dict]:
        """Serialized pool state shipped to the gateway at each barrier."""
        return []

    def apply_snapshots(self, snapshots: List[dict]) -> None:
        pass

    def finalize(self) -> dict:
        return {}


class GatewayPartition(Partition):
    """The control-plane shard: workload driver, relay, placement view.

    Params (all picklable): ``clusters`` — ``[{"pid", "name"}]`` in routing
    candidate order; ``model``; ``num_requests``; ``arrival`` — an
    :class:`~repro.sweep.spec.ArrivalSpec`; ``stream``; ``relay`` —
    :class:`~repro.faas.RelayConfig` field overrides.
    """

    def __init__(self, spec: PartitionSpec):
        super().__init__(spec)
        from dataclasses import replace

        from ..core import calibration
        from ..sweep.spec import ArrivalSpec
        from ..workload import ShareGPTConfig, ShareGPTWorkload

        params = spec.params
        self.model: str = params["model"]
        self.num_requests: int = params["num_requests"]
        self.stream: bool = bool(params.get("stream", False))

        relay_config = calibration.default_relay_config()
        if params.get("relay"):
            relay_config = replace(relay_config, **params["relay"])
        self.ids = IdGenerator()
        self.relay = RelayService(self.env, relay_config, ids=self.ids)
        self.relay.functions.register(FUNCTION_ID, name=HANDLER_CHAT,
                                      handler=HANDLER_CHAT, owner="parallel")

        # Placement plane over an (empty) federation registry: every remote
        # cluster's signals arrive as barrier snapshots, not observer hooks.
        self.view = TopologyView(self.env, FederationRegistry())
        self._proxy_by_pid: Dict[int, RelayBoundaryProxy] = {}
        self._candidates: List[str] = []
        for cluster in params["clusters"]:
            proxy = RelayBoundaryProxy(
                self.env, endpoint_id=f"ep-{cluster['name']}",
                cluster=cluster["name"], models=[self.model], view=self.view,
            )
            self.relay.register_endpoint(proxy)
            self._proxy_by_pid[cluster["pid"]] = proxy
            self._candidates.append(proxy.endpoint_id)

        workload = ShareGPTWorkload(
            replace(ShareGPTConfig(), seed=stable_seed(spec.seed, "workload")))
        self._requests = workload.generate(self.model,
                                           num_requests=self.num_requests)
        arrival: ArrivalSpec = params["arrival"]
        self._offsets = arrival.build().offsets(self.num_requests)

        self.registry = MetricsRegistry()
        self._latency = self.registry.histogram(
            "parallel_gateway_latency_s",
            "End-to-end request latency observed by the gateway partition")
        self._completed = self.registry.counter(
            "parallel_requests_total",
            "Requests completed, by outcome", labelnames=("outcome",))
        self._channels: Dict[str, StreamChannel] = {}
        self.records: List[RequestRecord] = []
        self.env.process(self._driver())

    # -- workload driver ---------------------------------------------------
    def _driver(self):
        for request, offset in zip(self._requests, self._offsets):
            if offset > self.env.now:
                yield self.env.timeout_at(offset)
            request.stream = self.stream
            request.arrival_time = self.env.now
            future = self.relay.submit(FUNCTION_ID, self._candidates,
                                       {"request": request},
                                       submitter="parallel-gateway")
            channel = None
            if self.stream:
                channel = StreamChannel(self.env)
                self._channels[future.task_id] = channel
            self.env.process(self._record(request, self.env.now, future, channel))

    def _record(self, request, send_time: float, future, channel):
        token_times: List[float] = []
        if channel is not None:
            while True:
                item = yield channel.get()
                if item is None:
                    break
                if item.kind == "token":
                    token_times.append(item.time)
        result = yield future.done
        success = result is not None and getattr(result, "success", True)
        first_token = token_times[0] if token_times else (
            getattr(result, "first_token_time", 0.0) or None)
        record = RequestRecord(
            request_id=request.request_id,
            model=self.model,
            send_time=send_time,
            completion_time=self.env.now,
            prompt_tokens=request.prompt_tokens,
            output_tokens=getattr(result, "output_tokens", 0),
            success=success,
            error=None if success else (future.record.error or "failed"),
            first_token_time=first_token if success else None,
            token_times=token_times or None,
        )
        self.records.append(record)
        if success:
            self._latency.observe(record.completion_time - record.send_time)
        self._completed.labels(outcome="ok" if success else "error").inc()

    # -- boundary ----------------------------------------------------------
    def collect_outbox(self) -> List[BoundaryMessage]:
        # Dispatches queued on the proxies during the window become boundary
        # messages; sorted pid order pins the same-arrival tiebreak.
        for pid in sorted(self._proxy_by_pid):
            for entry in self._proxy_by_pid[pid].drain_outbox():
                self.send(DISPATCH, pid, entry["arrival_time"], {
                    "task_id": entry["task_id"],
                    "function_id": entry["function_id"],
                    "submit_time": entry["submit_time"],
                    "submitter": entry["submitter"],
                    "payload": entry["payload"],
                })
        return super().collect_outbox()

    def _deliver_one(self, message: BoundaryMessage) -> None:
        if message.kind != RESULT:
            raise RuntimeError(f"gateway partition cannot handle {message.kind!r}")
        self.env.process(self._ingest_result(message))

    def _ingest_result(self, message: BoundaryMessage):
        yield self.env.timeout_at(message.arrival_time)
        body = message.body
        channel = self._channels.pop(body["task_id"], None)
        if channel is not None:
            events = [StreamEvent(kind="token", index=i, time=t)
                      for i, t in enumerate(body.get("stream_events") or [])]
            if events:
                channel.publish_bulk(events)
            channel.close()
        self._proxy_by_pid[message.src].complete(body["task_id"], body["outcome"])

    def apply_snapshots(self, snapshots: List[dict]) -> None:
        for snapshot in snapshots:
            self.view.apply_partition_snapshot(snapshot)

    def done(self) -> bool:
        # One record per workload request, appended only after its future
        # resolved and its stream channel (if any) was drained and closed.
        return len(self.records) >= self.num_requests

    def finalize(self) -> dict:
        return {
            "records": self.records,
            "registry": self.registry.to_dict(),
            "relay": {
                "submitted": self.relay.stats.submitted,
                "completed": self.relay.stats.completed,
                "failed": self.relay.stats.failed,
            },
        }


class ClusterPartition(Partition):
    """One facility shard: scheduler + compute endpoint + serving engines.

    Params: ``cluster_kind`` ("sophia" | "polaris" | "small"); ``num_nodes``;
    ``scheduler``; ``model``; ``max_instances``; ``max_parallel_tasks``;
    ``prewarm``; ``gateway_pid``; ``result_latency_s`` (this partition's
    outgoing lookahead — must equal ``spec.lookahead_s``).
    """

    def __init__(self, spec: PartitionSpec):
        super().__init__(spec)
        from ..cluster import (
            SchedulerConfig,
            make_scheduler,
            polaris_like,
            small_test_cluster,
            sophia_like,
        )
        from ..core import calibration
        from ..serving import default_catalog

        params = spec.params
        self.gateway_pid: int = params["gateway_pid"]
        self.result_latency_s: float = params["result_latency_s"]
        kind = params.get("cluster_kind", "small")
        num_nodes = params.get("num_nodes", 2)
        if kind == "sophia":
            cluster = sophia_like(num_nodes=num_nodes)
        elif kind == "polaris":
            cluster = polaris_like(num_nodes=num_nodes)
        else:
            cluster = small_test_cluster(name=spec.name, num_nodes=num_nodes)
        cluster.name = spec.name

        self.ids = IdGenerator()
        scheduler_kind = params.get("scheduler", "local")
        scheduler = make_scheduler(
            scheduler_kind, self.env, cluster,
            SchedulerConfig() if scheduler_kind in ("pbs", "slurm") else None,
            ids=self.ids,
        )
        self.scheduler = scheduler
        hosting = ModelHostingConfig(
            model=params["model"],
            max_instances=params.get("max_instances", 1),
            max_parallel_tasks=params.get("max_parallel_tasks", 32),
        )
        self.endpoint = ComputeEndpoint(
            self.env,
            scheduler,
            default_catalog(),
            EndpointConfig(
                endpoint_id=f"ep-{spec.name}",
                cluster=spec.name,
                models=[hosting],
                # Boundary tasks were already authenticated gateway-side;
                # the partition's dispatch message is the trust boundary.
                required_client_id=None,
            ),
            perf_config=calibration.default_perf_config(),
            engine_config=calibration.default_engine_config(False),
            api_config=calibration.default_api_server_config(),
            ids=self.ids,
        )
        functions = FunctionRegistry()
        self._function = functions.register(FUNCTION_ID, name=HANDLER_CHAT,
                                            handler=HANDLER_CHAT, owner="parallel")
        prewarm = params.get("prewarm", 1)
        if prewarm:
            self.endpoint.prewarm(params["model"], prewarm)

        self.registry = MetricsRegistry()
        self._service = self.registry.histogram(
            "parallel_cluster_service_s",
            "Dispatch-to-outcome task service time", labelnames=("cluster",))
        self._tasks = self.registry.counter(
            "parallel_cluster_tasks_total",
            "Boundary tasks executed", labelnames=("cluster",))

    # -- boundary ----------------------------------------------------------
    def _deliver_one(self, message: BoundaryMessage) -> None:
        if message.kind != DISPATCH:
            raise RuntimeError(f"cluster partition cannot handle {message.kind!r}")
        self.env.process(self._ingest_dispatch(message))

    def _ingest_dispatch(self, message: BoundaryMessage):
        yield self.env.timeout_at(message.arrival_time)
        body = message.body
        payload = dict(body["payload"])
        request = payload.get("request")
        record = TaskRecord(
            task_id=body["task_id"],
            function_id=body["function_id"],
            endpoint_id=self.endpoint.endpoint_id,
            payload=payload,
            submitter=body["submitter"],
            submit_time=body["submit_time"],
        )
        record.status = TaskStatus.DISPATCHED
        record.dispatch_time = self.env.now
        channel = None
        if request is not None and getattr(request, "stream", False):
            # Cluster-side stream channel with no live consumer: the engine
            # batches a window's tokens through publish_bulk, and the batch
            # rides the result message back to the gateway.
            channel = StreamChannel(self.env)
            payload[STREAM_CHANNEL_KEY] = channel
        outcome = yield self.endpoint.enqueue(record, self._function)

        stream_events: Optional[List[float]] = None
        if channel is not None:
            stream_events = [event.time for event in channel.drain()
                             if getattr(event, "kind", None) == "token"]
            payload.pop(STREAM_CHANNEL_KEY, None)
            if request is not None:
                request.metadata.pop(STREAM_CHANNEL_KEY, None)
        result = outcome.get("result")
        metadata = getattr(result, "metadata", None)
        if isinstance(metadata, dict):
            metadata.pop(STREAM_CHANNEL_KEY, None)

        self._service.labels(cluster=self.name).observe(
            self.env.now - record.dispatch_time)
        self._tasks.labels(cluster=self.name).inc()
        self.send(RESULT, self.gateway_pid,
                  self.env.now + self.result_latency_s, {
                      "task_id": record.task_id,
                      "outcome": outcome,
                      "stream_events": stream_events,
                  })

    def snapshots(self) -> List[dict]:
        snaps = []
        for model in sorted(self.endpoint.pools):
            pool = self.endpoint.pools[model]
            snaps.append({
                "model": pool.model,
                "endpoint_id": self.endpoint.endpoint_id,
                "cluster": self.name,
                "ready_instances": len(pool.ready_instances),
                "starting_instances": sum(
                    1 for i in pool.instances
                    if i.state == InstanceState.STARTING),
                "draining_instances": len(pool.draining),
                "queued_jobs": pool.queued_job_launches,
                "waiting_tasks": pool.waiting_tasks,
                "in_flight_tasks": pool.in_flight_tasks,
                "slots_per_instance": pool.slots_per_instance,
                "max_instances": pool.replicas.max_instances,
                "cold_start_estimate_s": pool.cold_start_estimate_s,
                "computed_at": self.env.now,
            })
        return snaps

    def done(self) -> bool:
        # Cluster shards never block termination on their own: pools and
        # autoscalers tick forever, and every in-flight federated task is
        # already covered by the gateway's record count (an undelivered
        # dispatch or result is a pending boundary message; a delivered one
        # keeps the gateway short of its target).
        return True

    def finalize(self) -> dict:
        return {
            "registry": self.registry.to_dict(),
            "tasks_executed": self.endpoint.tasks_executed,
            "tasks_failed": self.endpoint.tasks_failed,
            "gpu_seconds": self.scheduler.gpu_seconds(),
        }


class PingPartition(Partition):
    """Minimal partition for the null-message progress tests.

    A token circulates a ring of ping partitions with a configurable (often
    *zero*) transfer latency.  With zero latency every window degenerates to
    an inclusive micro-window at the current instant — the worst case for a
    conservative scheme — and the run must still make one hop of progress
    per round rather than deadlock.

    Params: ``ring`` — the pids in circulation order; ``hops``;
    ``latency_s``; ``start`` — True on the partition that emits hop 0.
    """

    def __init__(self, spec: PartitionSpec):
        super().__init__(spec)
        params = spec.params
        self.ring: List[int] = list(params["ring"])
        self.hops: int = params["hops"]
        self.latency_s: float = params.get("latency_s", 0.0)
        #: ``(time, hop)`` pairs observed by this partition.
        self.log: List[tuple] = []
        if params.get("start"):
            self.env.process(self._kickoff())

    def _next_pid(self) -> int:
        return self.ring[(self.ring.index(self.pid) + 1) % len(self.ring)]

    def _kickoff(self):
        yield self.env.timeout(0.0)
        self.log.append((self.env.now, 0))
        self.send(PING, self._next_pid(), self.env.now + self.latency_s,
                  {"hop": 1})

    def _deliver_one(self, message: BoundaryMessage) -> None:
        self.env.process(self._ingest_ping(message))

    def _ingest_ping(self, message: BoundaryMessage):
        yield self.env.timeout_at(message.arrival_time)
        hop = message.body["hop"]
        self.log.append((self.env.now, hop))
        if hop < self.hops:
            self.send(PING, self._next_pid(), self.env.now + self.latency_s,
                      {"hop": hop + 1})

    def finalize(self) -> dict:
        return {"log": self.log}


PARTITION_KINDS = {
    "gateway": GatewayPartition,
    "cluster": ClusterPartition,
    "ping": PingPartition,
}


def build_partition(spec: PartitionSpec) -> Partition:
    try:
        factory = PARTITION_KINDS[spec.kind]
    except KeyError:
        raise ValueError(f"unknown partition kind {spec.kind!r}; "
                         f"expected one of {sorted(PARTITION_KINDS)}") from None
    return factory(spec)
