"""Boundary messages exchanged between partitions at window barriers.

The only cross-partition edges in a partitioned federated deployment are
relay transfers (gateway → cluster dispatches, cluster → gateway results)
plus the piggy-backed pool snapshots that keep the gateway's
:class:`~repro.placement.TopologyView` current.  Each message carries the
*absolute* simulated arrival time, stamped by the sender from the relay's
deterministic transfer latencies — the same latencies that serve as the
conservative lookahead, which is what makes barrier delivery causal: a
message generated during a window can never arrive before that window's
horizon.

Messages are plain picklable dataclasses.  Delivery order is pinned by
:func:`sort_key` — ``(arrival_time, source partition, per-sender sequence)``
— so the receiving environment schedules them in an order that is a pure
function of simulated history, never of worker count or OS scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["DISPATCH", "RESULT", "PING", "BoundaryMessage", "sort_key"]

#: Gateway → cluster: a relay task crossing into the cluster's partition.
DISPATCH = "dispatch"
#: Cluster → gateway: the task outcome (plus any batched stream events).
RESULT = "result"
#: Toy kind used by :class:`~repro.parallel.partition.PingPartition` — the
#: minimal zero-lookahead exchange the null-message tests drive.
PING = "ping"


@dataclass
class BoundaryMessage:
    """One cross-partition event, delivered at an exact simulated time."""

    kind: str
    #: Sending / receiving partition ids (dense indexes, stable per run).
    src: int
    dst: int
    #: Per-sender monotone sequence, the deterministic same-time tiebreak.
    seq: int
    #: Absolute simulated time the message takes effect at the receiver.
    arrival_time: float
    #: Kind-specific body (task fields, outcome, stream-event batch, ...).
    body: Dict[str, Any] = field(default_factory=dict)


def sort_key(message: BoundaryMessage) -> Tuple[float, int, int]:
    """Total delivery order: arrival time, then sender, then send order."""
    return (message.arrival_time, message.src, message.seq)


def validate_arrival(message: BoundaryMessage, now: float,
                     window_time: Optional[float] = None) -> None:
    """Causality guard: a message must not arrive in the receiver's past.

    Raises ``RuntimeError`` (not an assert — this must hold in production
    runs too) when a sender understated its lookahead.  ``window_time``
    adds context to the error only.
    """
    if message.arrival_time < now:
        raise RuntimeError(
            f"causality violation: {message.kind} message from partition "
            f"{message.src} arrives at {message.arrival_time} but partition "
            f"{message.dst} is already at {now}"
            + (f" (window {window_time})" if window_time is not None else "")
        )
