"""PartitionedDeployment: one federated scenario spanning worker processes.

The orchestration loop is the synchronous-window conservative scheme from
:mod:`repro.parallel.horizon`:

1. every partition reports its *bound* (earliest possible next event);
2. the planner folds in the arrival times of boundary messages collected at
   the previous barrier and picks the next window;
3. each worker delivers its partitions' inbound messages (sorted by the
   deterministic :func:`~repro.parallel.boundary.sort_key`), applies barrier
   snapshots, advances its environments to the window, and reports new
   bounds + outbound messages + fresh snapshots;
4. repeat until every bound is infinite and no message is in flight.

One pipe round-trip per window: the planner already knows the arrival times
of the messages it routes, so the post-delivery bounds need no second
barrier.

``workers=1`` runs the identical loop over in-process partitions — with
messages and snapshots still pickle-round-tripped, so object identity can
never leak between partitions and the serial run is the parallel run's
golden reference by construction, for any worker count and any kernel queue
backend.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics import MergeableSummary, RequestRecord
from ..obs import MetricsRegistry
from .boundary import BoundaryMessage, sort_key
from .horizon import WindowStats, plan_window
from .partition import Partition, PartitionSpec, build_partition

__all__ = [
    "ClusterShardSpec",
    "FederatedScenario",
    "FederatedRunResult",
    "PartitionedDeployment",
    "run_partitions",
    "run_ping_ring",
    "golden_trace",
    "trace_fingerprint",
]

_INF = float("inf")


# --------------------------------------------------------------------------- hosts
def _roundtrip(obj):
    """Pickle round-trip: the serial fallback ships boundary data through
    the same serialization as real workers, so shared mutable state cannot
    make ``workers=1`` diverge from ``workers>1``."""
    return pickle.loads(pickle.dumps(obj))


def _step_partitions(partitions: Dict[int, Partition], window,
                     inbound: Dict[int, List[BoundaryMessage]],
                     snapshots: Dict[int, List[dict]]) -> Tuple[dict, float]:
    """Advance one host's partitions through a window; returns per-partition
    reports and the wall-clock spent inside advances."""
    reports = {}
    advance_wall = 0.0
    for pid in sorted(partitions):
        partition = partitions[pid]
        snaps = snapshots.get(pid)
        if snaps:
            partition.apply_snapshots(snaps)
        messages = inbound.get(pid)
        if messages:
            partition.deliver(messages)
        start = _time.perf_counter()
        bound = partition.advance(window)
        advance_wall += _time.perf_counter() - start
        reports[pid] = (bound, partition.collect_outbox(),
                        partition.snapshots(), partition.done())
    return reports, advance_wall


class _SerialHost:
    """All partitions in-process (the ``workers=1`` fallback)."""

    def __init__(self, specs: List[PartitionSpec]):
        self.partitions = {spec.pid: build_partition(spec) for spec in specs}
        self.advance_wall_s = 0.0

    def begin(self) -> Dict[int, float]:
        return {pid: p.bound() for pid, p in self.partitions.items()}

    def post(self, window, inbound, snapshots) -> None:
        inbound, snapshots = _roundtrip((inbound, snapshots))
        self._reports, wall = _step_partitions(self.partitions, window,
                                               inbound, snapshots)
        self._reports = _roundtrip(self._reports)
        self.advance_wall_s += wall

    def recv(self) -> dict:
        reports, self._reports = self._reports, None
        return reports

    def finalize(self) -> Tuple[dict, float]:
        return ({pid: p.finalize() for pid, p in self.partitions.items()},
                self.advance_wall_s)

    def close(self) -> None:
        pass


def _worker_main(conn, specs: List[PartitionSpec]) -> None:
    """Spawn-worker entry point: build partitions, serve window commands."""
    try:
        partitions = {spec.pid: build_partition(spec) for spec in specs}
        conn.send(("ready", {pid: p.bound() for pid, p in partitions.items()}))
        advance_wall = 0.0
        while True:
            command = conn.recv()
            if command[0] == "window":
                _tag, window, inbound, snapshots = command
                reports, wall = _step_partitions(partitions, window,
                                                 inbound, snapshots)
                advance_wall += wall
                conn.send(("report", reports))
            elif command[0] == "finalize":
                conn.send(("final",
                           {pid: p.finalize() for pid, p in partitions.items()},
                           advance_wall))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {command[0]!r}")
    except Exception:  # noqa: BLE001 - ship the traceback to the parent
        import traceback
        conn.send(("error", traceback.format_exc(limit=30)))
        raise
    finally:
        conn.close()


class _ProcessHost:
    """A spawn worker owning a subset of the partitions."""

    def __init__(self, specs: List[PartitionSpec], mp_context) -> None:
        self.pids = [spec.pid for spec in specs]
        self._conn, child = mp_context.Pipe(duplex=True)
        self._process = mp_context.Process(target=_worker_main,
                                           args=(child, specs), daemon=True)
        self._process.start()
        child.close()
        self.advance_wall_s = 0.0

    def _recv(self):
        try:
            reply = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"partition worker for pids {self.pids} died unexpectedly"
            ) from None
        if reply[0] == "error":
            raise RuntimeError(f"partition worker crashed:\n{reply[1]}")
        return reply

    def begin(self) -> Dict[int, float]:
        tag, bounds = self._recv()
        if tag != "ready":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected worker reply {tag!r}")
        return bounds

    def post(self, window, inbound, snapshots) -> None:
        self._conn.send(("window", window, inbound, snapshots))

    def recv(self) -> dict:
        _tag, reports = self._recv()
        return reports

    def finalize(self) -> Tuple[dict, float]:
        self._conn.send(("finalize",))
        _tag, payloads, advance_wall = self._recv()
        self.advance_wall_s = advance_wall
        return payloads, advance_wall

    def close(self) -> None:
        self._conn.close()
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - hung worker guard
            self._process.terminate()


# --------------------------------------------------------------------------- orchestration
def run_partitions(specs: List[PartitionSpec], workers: int = 1,
                   mp_context: str = "spawn",
                   max_windows: Optional[int] = None,
                   ) -> Tuple[Dict[int, dict], WindowStats]:
    """Run a set of partitions to completion under conservative windows.

    Returns ``(payloads, stats)``: each partition's ``finalize()`` dict by
    pid, and the window/overhead breakdown.  ``max_windows`` is a livelock
    guard (None derives a generous cap from the message count).
    """
    specs = sorted(specs, key=lambda spec: spec.pid)
    if len({spec.pid for spec in specs}) != len(specs):
        raise ValueError("partition pids must be unique")
    lookaheads = {spec.pid: spec.lookahead_s for spec in specs}

    workers = max(1, min(workers, len(specs)))
    started = _time.perf_counter()
    if workers == 1:
        hosts: List = [_SerialHost(specs)]
    else:
        import multiprocessing

        context = multiprocessing.get_context(mp_context)
        assigned: List[List[PartitionSpec]] = [[] for _ in range(workers)]
        for index, spec in enumerate(specs):
            assigned[index % workers].append(spec)
        hosts = [_ProcessHost(group, context) for group in assigned if group]

    host_of: Dict[int, object] = {}
    stats = WindowStats()
    try:
        bounds: Dict[int, float] = {}
        for host in hosts:
            for pid, bound in host.begin().items():
                bounds[pid] = bound
                host_of[pid] = host

        pending: List[BoundaryMessage] = []
        pending_snaps: List[Tuple[int, List[dict]]] = []
        while True:
            effective = dict(bounds)
            for message in pending:
                if message.arrival_time < effective[message.dst]:
                    effective[message.dst] = message.arrival_time
            window = plan_window(effective, lookaheads)
            if window is None:
                break
            if max_windows is not None and stats.windows >= max_windows:
                raise RuntimeError(
                    f"window cap ({max_windows}) exceeded at t={window.time}: "
                    "partitions are exchanging messages without draining")
            stats.windows += 1
            if window.inclusive:
                stats.micro_windows += 1

            inbound: Dict[int, List[BoundaryMessage]] = {}
            for message in sorted(pending, key=sort_key):
                inbound.setdefault(message.dst, []).append(message)
            snapshots: Dict[int, List[dict]] = {}
            for src, snaps in sorted(pending_snaps):
                for spec in specs:
                    if spec.pid != src:
                        snapshots.setdefault(spec.pid, []).extend(snaps)
            pending, pending_snaps = [], []

            barrier_start = _time.perf_counter()
            for host in hosts:
                host.post(
                    window,
                    {pid: msgs for pid, msgs in inbound.items()
                     if host_of[pid] is host},
                    {pid: snaps for pid, snaps in snapshots.items()
                     if host_of[pid] is host},
                )
            reports: Dict[int, tuple] = {}
            for host in hosts:
                reports.update(host.recv())
            stats.sync_wall_s += _time.perf_counter() - barrier_start

            all_done = True
            for pid in sorted(reports):
                bound, outbox, snaps, part_done = reports[pid]
                bounds[pid] = bound
                all_done = all_done and part_done
                for message in outbox:
                    stats.messages += 1
                    kinds = stats.message_kinds
                    kinds[message.kind] = kinds.get(message.kind, 0) + 1
                pending.extend(outbox)
                if snaps:
                    pending_snaps.append((pid, snaps))
            # Completion-based termination: shards with perpetual background
            # timers (autoscalers, pool maintenance) keep their bounds finite
            # forever, so exhaustion (plan_window → None) never fires for
            # them.  Once every partition reports done and no boundary
            # message is in flight, nothing observable remains.
            if all_done and not pending:
                break

        payloads: Dict[int, dict] = {}
        advance_total = 0.0
        host_advances = []
        for host in hosts:
            host_payloads, advance_wall = host.finalize()
            payloads.update(host_payloads)
            advance_total += advance_wall
            host_advances.append(advance_wall)
        stats.advance_wall_s = advance_total
        # The barrier timer necessarily includes the workers' (parallel)
        # advance time; subtract the critical path so sync_wall_s reflects
        # coordination overhead, not simulation work.
        stats.sync_wall_s = max(
            0.0, stats.sync_wall_s - (max(host_advances) if len(hosts) > 1
                                      else advance_total))
        return payloads, stats
    finally:
        for host in hosts:
            host.close()
        _ = started  # wall-clock is the caller's to measure end to end


# --------------------------------------------------------------------------- scenarios
@dataclass
class ClusterShardSpec:
    """One facility in a partitioned federated scenario."""

    name: str
    cluster_kind: str = "small"
    num_nodes: int = 2
    scheduler: str = "local"
    max_instances: int = 1
    max_parallel_tasks: int = 32
    prewarm: int = 1


@dataclass
class FederatedScenario:
    """Declarative, pickle-safe description of one partitioned run."""

    clusters: List[ClusterShardSpec] = field(default_factory=list)
    model: str = "Qwen/Qwen2.5-7B-Instruct"
    num_requests: int = 100
    #: Mean request rate for the default Poisson arrivals; ignored when an
    #: explicit ``arrival`` spec is given.
    rate: float = 2.0
    #: Optional :class:`~repro.sweep.spec.ArrivalSpec` (e.g. diurnal).
    arrival: Optional[object] = None
    seed: int = 0
    kernel_queue: str = "heap"
    stream: bool = False
    #: :class:`~repro.faas.RelayConfig` field overrides (e.g. latencies).
    relay: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def demo(cls, clusters: int = 2, num_requests: int = 40,
             **overrides) -> "FederatedScenario":
        """Small multi-cluster scenario (tests, quickstart §14)."""
        shards = [ClusterShardSpec(name=f"cluster{i}") for i in range(clusters)]
        return cls(clusters=shards, num_requests=num_requests, **overrides)

    def relay_config(self):
        from dataclasses import replace

        from ..core import calibration
        config = calibration.default_relay_config()
        return replace(config, **self.relay) if self.relay else config

    def partition_specs(self) -> List[PartitionSpec]:
        if not self.clusters:
            raise ValueError("FederatedScenario needs at least one cluster")
        from ..common import stable_seed
        from ..sweep.spec import ArrivalSpec

        relay_config = self.relay_config()
        # Outgoing lookaheads: dispatches leave the gateway after
        # submit+dispatch wire time; results leave a cluster after the
        # result wire time.  These are exactly the arrival stamps the
        # boundary messages carry, so the windows are as wide as causality
        # allows.
        gateway_lookahead = (relay_config.submit_latency_s
                             + relay_config.dispatch_latency_s)
        cluster_lookahead = relay_config.result_latency_s
        arrival = self.arrival or ArrivalSpec(
            kind="poisson", rate=self.rate,
            seed=stable_seed(self.seed, "arrival"))

        specs = [PartitionSpec(
            pid=0, name="gateway", kind="gateway",
            lookahead_s=gateway_lookahead, kernel_queue=self.kernel_queue,
            seed=self.seed,
            params={
                "clusters": [{"pid": index + 1, "name": shard.name}
                             for index, shard in enumerate(self.clusters)],
                "model": self.model,
                "num_requests": self.num_requests,
                "arrival": arrival,
                "stream": self.stream,
                "relay": dict(self.relay),
            },
        )]
        for index, shard in enumerate(self.clusters):
            specs.append(PartitionSpec(
                pid=index + 1, name=shard.name, kind="cluster",
                lookahead_s=cluster_lookahead,
                kernel_queue=self.kernel_queue, seed=self.seed,
                params={
                    "gateway_pid": 0,
                    "result_latency_s": cluster_lookahead,
                    "cluster_kind": shard.cluster_kind,
                    "num_nodes": shard.num_nodes,
                    "scheduler": shard.scheduler,
                    "model": self.model,
                    "max_instances": shard.max_instances,
                    "max_parallel_tasks": shard.max_parallel_tasks,
                    "prewarm": shard.prewarm,
                },
            ))
        return specs


# --------------------------------------------------------------------------- results
def golden_trace(records: List[RequestRecord]) -> List[tuple]:
    """Canonical per-request tuples (sorted by request id) whose floats are
    bit-exact — the golden-trace form the determinism tests pin."""
    return sorted(
        (r.request_id, r.success, r.send_time, r.completion_time,
         r.prompt_tokens, r.output_tokens, r.first_token_time,
         tuple(r.token_times) if r.token_times else ())
        for r in records
    )


def trace_fingerprint(records: List[RequestRecord]) -> str:
    """SHA-256 over the golden trace (floats via ``repr`` — bit-exact)."""
    digest = hashlib.sha256()
    for entry in golden_trace(records):
        digest.update(repr(entry).encode())
    return digest.hexdigest()


@dataclass
class FederatedRunResult:
    """Merged output of one partitioned federated run."""

    records: List[RequestRecord]
    merged: MergeableSummary
    registry: MetricsRegistry
    fingerprint: str
    stats: WindowStats
    workers: int
    wall_s: float
    per_partition: Dict[int, dict]

    def to_summary_dict(self) -> dict:
        return {
            "workers": self.workers,
            "wall_s": self.wall_s,
            "requests": len(self.records),
            "fingerprint": self.fingerprint,
            **self.stats.to_dict(),
        }


class PartitionedDeployment:
    """Split one federated deployment into per-cluster partitions and run
    them under conservative synchronous windows.

    ``workers=1`` is the serial fallback (same code path, no processes);
    any larger count shards the partitions across spawn workers.  Merged
    results are bit-identical for every worker count and kernel queue
    backend — :attr:`FederatedRunResult.fingerprint` is the check.
    """

    def __init__(self, scenario: FederatedScenario, workers: int = 1,
                 mp_context: str = "spawn",
                 max_windows: Optional[int] = None):
        self.scenario = scenario
        self.workers = workers
        self.mp_context = mp_context
        self.max_windows = max_windows

    def run(self) -> FederatedRunResult:
        started = _time.perf_counter()
        payloads, stats = run_partitions(
            self.scenario.partition_specs(), workers=self.workers,
            mp_context=self.mp_context, max_windows=self.max_windows)
        wall_s = _time.perf_counter() - started

        gateway = payloads[0]
        records: List[RequestRecord] = gateway["records"]
        if records:
            duration = max(r.completion_time for r in records) - min(
                r.send_time for r in records)
        else:
            duration = 0.0
        merged = MergeableSummary.from_records(
            records, label=f"partitioned-{len(self.scenario.clusters)}c",
            duration_s=max(duration, 1e-9))

        # One registry across the federation: gateway first, then every
        # cluster shard in pid order (exact histogram merges).
        registry = MetricsRegistry.from_dict(gateway["registry"])
        for pid in sorted(payloads):
            if pid == 0:
                continue
            registry.merge(MetricsRegistry.from_dict(payloads[pid]["registry"]))

        digest = hashlib.sha256()
        digest.update(merged.fingerprint().encode())
        digest.update(trace_fingerprint(records).encode())
        return FederatedRunResult(
            records=records,
            merged=merged,
            registry=registry,
            fingerprint=digest.hexdigest(),
            stats=stats,
            workers=self.workers,
            wall_s=wall_s,
            per_partition=payloads,
        )


def run_ping_ring(partitions: int = 3, hops: int = 30,
                  latency_s: float = 0.0, workers: int = 1,
                  kernel_queue: str = "heap",
                  mp_context: str = "spawn") -> Dict[int, list]:
    """Null-message exercise: a token circulating ``partitions`` shards.

    With ``latency_s=0`` every edge has zero lookahead, so every window is
    an inclusive micro-window — the conservative scheme's worst case.  The
    progress guarantee says this terminates after exactly ``hops`` hand-offs
    instead of deadlocking; returns each partition's ``(time, hop)`` log.
    """
    ring = list(range(partitions))
    specs = [PartitionSpec(
        pid=pid, name=f"ping{pid}", kind="ping", lookahead_s=latency_s,
        kernel_queue=kernel_queue,
        params={"ring": ring, "hops": hops, "latency_s": latency_s,
                "start": pid == 0},
    ) for pid in ring]
    # Generous livelock guard: zero-latency rings need one window per hop
    # (plus setup); anything far beyond that is a planner bug.
    payloads, _stats = run_partitions(specs, workers=workers,
                                      mp_context=mp_context,
                                      max_windows=10 * hops + 100)
    return {pid: payload["log"] for pid, payload in payloads.items()}


def _compact_json(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
