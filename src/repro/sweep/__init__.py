"""Sweep plane: sharded simulation runs with mergeable metrics.

The horizontal-scale counterpart to the kernel's vertical optimisations:
scenario grids (rates × policies × seeds, tenant shards, chaos drills)
expand into independent, pickle-safe cells (:class:`ScenarioSpec` /
:class:`SweepSpec`), execute across ``multiprocessing`` workers with
bounded retry (:class:`SweepRunner`), and reduce deterministically to one
summary via :class:`repro.metrics.MergeableSummary` — bit-identical for
any worker count.

Quickstart::

    spec = SweepSpec("grid", runner="engine",
                     base={"model": "Llama-3.3-70B", "num_requests": 1000},
                     axes={"rate": [1.0, 4.0], "seed": [0, 1]})
    result = SweepRunner(workers=4).run(spec.expand())
    print(result.merged(label="grid").row())
"""

from .runner import ShardResult, SweepResult, SweepRunner
from .scenarios import (
    RUNNERS,
    run_autoscale_policy_cell,
    run_direct_cell,
    run_engine_cell,
    run_first_cell,
)
from .spec import ArrivalSpec, ScenarioSpec, SweepSpec

__all__ = [
    "ArrivalSpec",
    "ScenarioSpec",
    "SweepSpec",
    "ShardResult",
    "SweepResult",
    "SweepRunner",
    "RUNNERS",
    "run_engine_cell",
    "run_first_cell",
    "run_direct_cell",
    "run_autoscale_policy_cell",
]
