"""Sharded execution of scenario cells across worker processes.

:class:`SweepRunner` executes a list of :class:`~repro.sweep.spec.ScenarioSpec`
cells on a ``multiprocessing`` worker pool (or serially in-process with
``workers=1`` — the debugging fallback: same code path, no pickling across
processes, ``pdb`` works).  Guarantees:

* **Determinism** — results are returned (and merged) in cell order, never
  completion order, so merged float accumulations are bit-identical across
  worker counts; cell random streams are keyed by cell key (see
  :mod:`repro.sweep.spec`), so the simulated results themselves are too.
* **Bounded retry** — a shard that raises *or crashes its worker* is retried
  up to ``max_retries`` times before being reported as a failure; one bad
  cell cannot take down the sweep.
* **Structured progress** — per-shard wall time, worker pid and attempt
  count are recorded in the result timeline (and optionally printed live).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..common import ConfigurationError
from ..metrics import BenchmarkSummary, MergeableSummary
from .spec import ScenarioSpec

__all__ = ["ShardResult", "SweepResult", "SweepRunner"]


@dataclass
class ShardResult:
    """Outcome of one cell: the runner's payload plus execution metadata."""

    key: str
    ok: bool = False
    payload: Any = None
    error: Optional[str] = None
    wall_s: float = 0.0
    pid: int = 0
    attempts: int = 1
    tags: Dict[str, Any] = field(default_factory=dict)


def _execute_cell(spec: ScenarioSpec) -> ShardResult:
    """Worker entry point: run one cell, never raise (errors are data)."""
    start = time.perf_counter()
    try:
        payload = spec.run()
        return ShardResult(key=spec.key, ok=True, payload=payload,
                           wall_s=time.perf_counter() - start,
                           pid=os.getpid(), tags=dict(spec.tags))
    except Exception:  # noqa: BLE001 - shard failures are retried/reported
        return ShardResult(key=spec.key, ok=False,
                           error=traceback.format_exc(limit=20),
                           wall_s=time.perf_counter() - start,
                           pid=os.getpid(), tags=dict(spec.tags))


class SweepResult:
    """Results of one sweep, in cell order."""

    def __init__(self, results: List[ShardResult], workers: int, wall_s: float,
                 timeline: List[dict]):
        self.results = results
        self.workers = workers
        self.wall_s = wall_s
        #: Completion-ordered events: {key, ok, wall_s, pid, attempt, index, total}.
        self.timeline = timeline

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[ShardResult]:
        return [r for r in self.results if not r.ok]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def payloads(self) -> List[Any]:
        return [r.payload for r in self.results if r.ok]

    def payload_by_key(self) -> Dict[str, Any]:
        return {r.key: r.payload for r in self.results if r.ok}

    # -- reductions --------------------------------------------------------
    def mergeables(self) -> List[MergeableSummary]:
        out = []
        for result in self.results:
            if not result.ok:
                continue
            payload = result.payload
            if isinstance(payload, MergeableSummary):
                out.append(payload)
            elif isinstance(payload, dict) and isinstance(
                    payload.get("mergeable"), MergeableSummary):
                out.append(payload["mergeable"])
        return out

    def merged(self, label: Optional[str] = None) -> MergeableSummary:
        """Reduce every shard's mergeable metrics, in cell order.

        Merging in cell order (not completion order) pins the float-addition
        order, so the reduction is bit-identical for any worker count.
        """
        return MergeableSummary.merge_all(self.mergeables(), label=label)

    def summaries(self) -> List[BenchmarkSummary]:
        out = []
        for payload in self.payloads():
            if isinstance(payload, dict) and isinstance(
                    payload.get("summary"), BenchmarkSummary):
                out.append(payload["summary"])
        return out

    def registries(self) -> List["MetricsRegistry"]:
        """Per-cell observability registries, in cell order.

        Cells whose payload carries a ``"registry"`` entry (a
        :meth:`~repro.obs.MetricsRegistry.to_dict` snapshot — e.g. the
        ``partitioned`` runner) are rehydrated; cells without one are
        skipped.
        """
        from ..obs import MetricsRegistry

        out = []
        for result in self.results:
            if not result.ok:
                continue
            payload = result.payload
            if isinstance(payload, dict) and isinstance(
                    payload.get("registry"), dict):
                out.append(MetricsRegistry.from_dict(payload["registry"]))
        return out

    def merged_registry(self) -> Optional["MetricsRegistry"]:
        """One registry across every shard, merged in cell order.

        Counter sums and histogram bucket merges are exact, and the cell
        ordering pins float-addition order — the merged registry is
        bit-identical for any worker count.  Returns ``None`` when no cell
        shipped a registry snapshot.
        """
        registries = self.registries()
        if not registries:
            return None
        merged = registries[0]
        for registry in registries[1:]:
            merged.merge(registry)
        return merged


class SweepRunner:
    """Executes scenario cells, sharded across ``workers`` processes.

    ``workers=1`` runs every cell in-process (serial fallback).  The
    ``mp_context`` defaults to ``"spawn"`` — workers import a fresh
    interpreter, so cells must be fully pickle-safe (which
    :class:`ScenarioSpec` guarantees) and results cannot depend on parent
    state leaking through ``fork``.
    """

    def __init__(self, workers: int = 1, mp_context: str = "spawn",
                 max_retries: int = 1,
                 progress: Union[bool, Callable[[dict], None], None] = None):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.workers = workers
        self.mp_context = mp_context
        self.max_retries = max_retries
        self.progress = progress

    # -- public API --------------------------------------------------------
    def run(self, cells: Sequence[ScenarioSpec]) -> SweepResult:
        cells = list(cells)
        keys = [c.key for c in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ConfigurationError(f"duplicate cell keys: {dupes}")
        start = time.perf_counter()
        timeline: List[dict] = []
        if self.workers == 1 or len(cells) <= 1:
            results = self._run_serial(cells, timeline)
        else:
            results = self._run_parallel(cells, timeline)
        ordered = [results[key] for key in keys]
        return SweepResult(ordered, workers=self.workers,
                           wall_s=time.perf_counter() - start, timeline=timeline)

    # -- execution strategies ----------------------------------------------
    def _run_serial(self, cells: List[ScenarioSpec],
                    timeline: List[dict]) -> Dict[str, ShardResult]:
        results: Dict[str, ShardResult] = {}
        for cell in cells:
            attempts = 0
            while True:
                attempts += 1
                result = _execute_cell(cell)
                if result.ok or attempts > self.max_retries:
                    break
                self._report(timeline, result, attempts, len(results), len(cells),
                             retrying=True)
            result.attempts = attempts
            results[cell.key] = result
            self._report(timeline, result, attempts, len(results), len(cells))
        return results

    def _run_parallel(self, cells: List[ScenarioSpec],
                      timeline: List[dict]) -> Dict[str, ShardResult]:
        results: Dict[str, ShardResult] = {}
        attempts: Dict[str, int] = {c.key: 0 for c in cells}
        pending = list(cells)
        total = len(cells)
        # Round-based: each round gets a fresh pool, so a worker hard-crash
        # (which breaks a ProcessPoolExecutor) only costs the in-flight round
        # and the crashed shards are retried on healthy workers.
        while pending:
            round_cells, pending = pending, []
            ctx = multiprocessing.get_context(self.mp_context)
            with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(round_cells)),
                    mp_context=ctx) as pool:
                futures = {pool.submit(_execute_cell, cell): cell
                           for cell in round_cells}
                for future in as_completed(futures):
                    cell = futures[future]
                    attempts[cell.key] += 1
                    try:
                        result = future.result()
                    except Exception as exc:  # worker crash / pickling failure
                        result = ShardResult(
                            key=cell.key, ok=False, tags=dict(cell.tags),
                            error=f"{type(exc).__name__}: {exc}")
                    if not result.ok and attempts[cell.key] <= self.max_retries:
                        pending.append(cell)
                        self._report(timeline, result, attempts[cell.key],
                                     len(results), total, retrying=True)
                        continue
                    result.attempts = attempts[cell.key]
                    results[cell.key] = result
                    self._report(timeline, result, attempts[cell.key],
                                 len(results), total)
        return results

    # -- progress ----------------------------------------------------------
    def _report(self, timeline: List[dict], result: ShardResult, attempt: int,
                done: int, total: int, retrying: bool = False) -> None:
        event = {
            "key": result.key,
            "ok": result.ok,
            "retrying": retrying,
            "wall_s": round(result.wall_s, 4),
            "pid": result.pid,
            "attempt": attempt,
            "done": done,
            "total": total,
        }
        timeline.append(event)
        if callable(self.progress):
            self.progress(event)
        elif self.progress:
            status = "retry" if retrying else ("ok" if result.ok else "FAILED")
            print(f"  [{done}/{total}] {result.key} {status} "
                  f"in {result.wall_s:.2f}s (pid {result.pid}, attempt {attempt})")
