"""Declarative, pickle-safe descriptions of simulation cells.

A *cell* is one independent simulation: a deployment/engine configuration,
a workload and arrival spec, and a seed namespace.  :class:`ScenarioSpec`
describes a cell declaratively — everything it embeds pickles, so the
:class:`~repro.sweep.runner.SweepRunner` can ship cells to worker
processes.  :class:`SweepSpec` describes a *grid* of cells (axes of rates,
policies, seeds, ...) and expands it deterministically, so benchmarks say
*what* to run, not *how*.

Seeding discipline: a cell's random streams are keyed by its **cell key**
(via :meth:`repro.common.RandomSource.spawn_named` /
:func:`repro.common.stable_seed`), never by which worker ran it or in what
order — a sweep's merged metrics are therefore independent of worker count
and scheduling.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..common import ConfigurationError, RandomSource, stable_seed
from ..workload import (
    ArrivalProcess,
    DiurnalArrival,
    InfiniteArrival,
    PoissonArrival,
    RampArrival,
    TraceReplayArrival,
    UniformArrival,
)

__all__ = ["ArrivalSpec", "ScenarioSpec", "SweepSpec"]


@dataclass
class ArrivalSpec:
    """Pickle-safe description of an arrival process.

    ``kind`` selects the process; ``params`` carries its keyword arguments
    (e.g. ``{"base_rate": 0.2, "peak_rate": 4.0, "period_s": 500.0}`` for
    ``diurnal``, or ``{"trace": [...], "name": "flash"}`` for ``trace``).
    """

    kind: str = "inf"  # inf | poisson | uniform | diurnal | ramp | trace
    rate: Optional[float] = None
    seed: int = 7
    params: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def for_rate(cls, rate: Optional[float], poisson: bool = True,
                 seed: int = 7) -> "ArrivalSpec":
        """Mirror :func:`repro.workload.make_arrival` declaratively."""
        if rate is None or rate == float("inf"):
            return cls(kind="inf")
        return cls(kind="poisson" if poisson else "uniform", rate=rate, seed=seed)

    def build(self) -> ArrivalProcess:
        if self.kind == "inf":
            return InfiniteArrival()
        if self.kind == "poisson":
            return PoissonArrival(self.rate, seed=self.seed)
        if self.kind == "uniform":
            return UniformArrival(self.rate)
        if self.kind == "diurnal":
            return DiurnalArrival(seed=self.seed, **self.params)
        if self.kind == "ramp":
            return RampArrival(seed=self.seed, **self.params)
        if self.kind == "trace":
            return TraceReplayArrival(self.params["trace"],
                                      name=self.params.get("name", "trace"))
        raise ConfigurationError(f"unknown arrival kind {self.kind!r}")


def _resolve_dotted(path: str) -> Callable:
    """Resolve ``"package.module:callable"`` to the callable."""
    module_name, _, attr = path.partition(":")
    if not attr:
        raise ConfigurationError(
            f"runner path {path!r} must look like 'package.module:callable'")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ConfigurationError(f"{module_name} has no runner {attr!r}") from exc


@dataclass
class ScenarioSpec:
    """One simulation cell, described declaratively.

    ``runner`` names the importable cell function: a short name registered
    in :data:`repro.sweep.scenarios.RUNNERS`, a dotted
    ``"package.module:callable"`` path, or a module-level callable (pickled
    by reference).  The runner receives the spec and returns a pickle-safe
    payload — by convention a dict with at least a ``"mergeable"``
    :class:`~repro.metrics.MergeableSummary` and an exact ``"summary"``
    :class:`~repro.metrics.BenchmarkSummary`.
    """

    key: str
    runner: Union[str, Callable]
    model: str = ""
    num_requests: int = 0
    arrival: Optional[ArrivalSpec] = None
    #: Root seed of the sweep; cell streams derive from (seed, key).
    seed: int = 0
    kernel_queue: str = "heap"
    #: ``EngineConfig`` field overrides for engine-level cells.
    engine: Dict[str, Any] = field(default_factory=dict)
    #: Runner-specific parameters (pickle-safe values only).
    params: Dict[str, Any] = field(default_factory=dict)
    #: The grid-axis values that produced this cell (set by ``SweepSpec.expand``).
    tags: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    # -- seeding -----------------------------------------------------------
    def random_source(self) -> RandomSource:
        """The cell's named random stream (independent of worker assignment)."""
        return RandomSource(self.seed).spawn_named(self.key)

    def cell_seed(self, *names: Union[str, int, float]) -> int:
        """Stable integer seed for this cell, further namespaced by ``names``."""
        return stable_seed(self.seed, self.key, *names)

    # -- execution ---------------------------------------------------------
    def resolve_runner(self) -> Callable:
        if callable(self.runner):
            return self.runner
        if ":" in self.runner:
            return _resolve_dotted(self.runner)
        from . import scenarios  # local import: scenarios imports heavy substrates

        try:
            return scenarios.RUNNERS[self.runner]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown runner {self.runner!r}; registered: "
                f"{sorted(scenarios.RUNNERS)}") from exc

    def run(self) -> Any:
        """Execute the cell in this process and return the runner's payload."""
        return self.resolve_runner()(self)


def _format_axis_value(value: Any) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


#: ScenarioSpec fields an axis or base entry may set directly; anything else
#: lands in ``params``.
_SPEC_FIELDS = ("model", "num_requests", "arrival", "seed", "kernel_queue",
                "engine", "label")


@dataclass
class SweepSpec:
    """A grid of cells: shared base settings plus axes to sweep.

    ``axes`` maps axis name to the values swept, in significance order; the
    expansion enumerates the cartesian product with the *last* axis varying
    fastest, and keys cells ``"{name}/{axis}={value}/..."`` — stable across
    runs, so cell keys (and therefore cell seed streams) never depend on
    worker count or scheduling.

    Axis names (and ``base`` keys) matching a :class:`ScenarioSpec` field
    (``model``, ``num_requests``, ``arrival``, ``seed``, ``kernel_queue``,
    ``engine``, ``label``) set that field; every other name lands in
    ``ScenarioSpec.params`` for the runner.  Axis values are additionally
    recorded in ``ScenarioSpec.tags``.
    """

    name: str
    runner: Union[str, Callable]
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    seed: int = 0

    def expand(self) -> List[ScenarioSpec]:
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")
        cells: List[ScenarioSpec] = []
        axis_names = list(self.axes)
        combos = [()]
        for axis in axis_names:
            combos = [c + (v,) for c in combos for v in self.axes[axis]]
        for combo in combos:
            axis_values = dict(zip(axis_names, combo))
            merged: Dict[str, Any] = {**self.base, **axis_values}
            key = self.name + "".join(
                f"/{axis}={_format_axis_value(value)}"
                for axis, value in axis_values.items())
            fields = {name: merged.pop(name) for name in _SPEC_FIELDS if name in merged}
            fields.setdefault("seed", self.seed)
            cells.append(ScenarioSpec(
                key=key,
                runner=self.runner,
                params=merged,
                tags=axis_values,
                **fields,
            ))
        return cells

    @property
    def num_cells(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total
