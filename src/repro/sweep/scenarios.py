"""Importable cell runners for the sweep plane.

Each runner is a module-level function ``fn(spec) -> payload`` — importable
from worker processes, registered under a short name in :data:`RUNNERS`.
Payloads are dicts carrying at least:

* ``"summary"`` — an exact :class:`~repro.metrics.BenchmarkSummary`
  computed from the raw in-worker records (percentiles are exact, so ported
  benchmarks print unchanged rows);
* ``"mergeable"`` — a :class:`~repro.metrics.MergeableSummary` for
  cross-shard reduction (log-bucket quantiles, associative merge).

Seeding: cells that vary a ``seed`` axis key their workload and arrival
streams off ``(model, seed tag, rate)`` via :func:`repro.common.stable_seed`
— a pure function of the cell description, never of worker assignment — so
merged sweep metrics are bit-identical for any worker count, and cells that
differ only in kernel/engine knobs (e.g. the ``heap`` vs ``calendar`` queue
policy) replay the identical workload and must produce bit-identical
simulated results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..common import stable_seed
from ..metrics import MergeableSummary, RequestRecord, summarize
from ..sim import Environment
from ..workload import BenchmarkClient, ShareGPTConfig, ShareGPTWorkload
from .spec import ArrivalSpec, ScenarioSpec

__all__ = [
    "RUNNERS",
    "run_engine_cell",
    "run_first_cell",
    "run_direct_cell",
    "run_autoscale_policy_cell",
    "run_partitioned_cell",
]


def _workload(spec: ScenarioSpec) -> ShareGPTWorkload:
    """The cell's workload: the paper's fixed request set unless a
    ``workload_seed`` param or a ``seed`` grid axis varies it."""
    workload_seed = spec.params.get("workload_seed")
    if workload_seed is None and "seed" in spec.tags:
        workload_seed = stable_seed("workload", spec.model, spec.tags["seed"])
    if workload_seed is None:
        return ShareGPTWorkload()
    return ShareGPTWorkload(replace(ShareGPTConfig(), seed=workload_seed))


def _arrival_spec(spec: ScenarioSpec) -> ArrivalSpec:
    if spec.arrival is not None:
        arrival = spec.arrival
    else:
        arrival = ArrivalSpec.for_rate(spec.params.get("rate"))
    if "seed" in spec.tags and arrival.kind in ("poisson", "diurnal", "ramp"):
        arrival = replace(arrival, seed=stable_seed(
            "arrival", spec.tags["seed"], arrival.kind, arrival.rate or 0.0))
    return arrival


def _payload(collector_or_records, label: str, duration_s: float,
             extras: Dict = None) -> dict:
    summary = summarize(collector_or_records, label=label, duration_s=duration_s)
    mergeable = MergeableSummary.from_records(collector_or_records, label=label,
                                              duration_s=duration_s)
    payload = {"summary": summary, "mergeable": mergeable}
    if extras:
        payload.update(extras)
    return payload


# ------------------------------------------------------------------ engine
def run_engine_cell(spec: ScenarioSpec) -> dict:
    """Engine-level cell: requests against one macro-stepped engine instance.

    The fastest substrate (no gateway/relay/scheduler layers) — what the
    million-request scale sweeps run on.  Engine knobs come from
    ``spec.engine`` (e.g. ``{"macro_stepping": False}``); the kernel queue
    from ``spec.kernel_queue`` (the ``heap``/``calendar`` policy axis).
    """
    from ..cluster import A100_40GB, dgx_a100_spec
    from ..serving import ContinuousBatchingEngine, EngineConfig, PerformanceModel
    from ..serving import default_catalog

    env = Environment(queue=spec.kernel_queue)
    catalog_spec = default_catalog().get(spec.model)
    tensor_parallel = spec.params.get("tensor_parallel", 8)
    perf = PerformanceModel(catalog_spec, tensor_parallel, A100_40GB,
                            node_spec=dgx_a100_spec())
    engine_config = EngineConfig(generate_text=False, **spec.engine)
    engine = ContinuousBatchingEngine(env, perf, engine_config)

    requests = _workload(spec).generate(catalog_spec.name,
                                        num_requests=spec.num_requests)
    offsets = _arrival_spec(spec).build().offsets(spec.num_requests)
    result_events = []
    send_times: List[float] = []

    def driver(env):
        last = 0.0
        for request, offset in zip(requests, offsets):
            if offset > last:
                yield env.timeout(offset - last)
                last = offset
            send_times.append(env.now)
            result_events.append(engine.submit(request))
        yield env.all_of(result_events)

    proc = env.process(driver(env))
    env.run(until=proc)

    records = []
    for request, send_time, event in zip(requests, send_times, result_events):
        result = event.value
        records.append(RequestRecord(
            request_id=result.request_id,
            model=spec.model,
            send_time=send_time,
            completion_time=result.completion_time,
            prompt_tokens=request.prompt_tokens,
            output_tokens=result.output_tokens,
            success=result.success,
            first_token_time=result.first_token_time or None,
        ))
    label = spec.label or spec.key
    duration = max(1e-9, env.now - (min(send_times) if send_times else 0.0))
    stats = engine.stats
    return _payload(records, label, duration, extras={
        "sim_duration_s": env.now,
        "output_tokens": stats.output_tokens,
        "peak_batch_size": stats.peak_batch_size,
    })


# ------------------------------------------------------------------ FIRST / direct
def run_first_cell(spec: ScenarioSpec) -> dict:
    """Full FIRST path (gateway → relay → endpoint → engine), one deployment.

    Params: ``max_instances``, ``prewarm_instances``, ``num_nodes``,
    ``stream`` — the knobs of the paper's §5 scenarios.
    """
    from ..core import FIRSTDeployment, sophia_benchmark_config

    params = spec.params
    config = params.get("deployment") or sophia_benchmark_config(
        model=spec.model,
        max_instances=params.get("max_instances", 1),
        num_nodes=params.get("num_nodes", 8),
    )
    config.kernel_queue = spec.kernel_queue
    deployment = FIRSTDeployment(config)
    deployment.warm_up(spec.model, instances=params.get("prewarm_instances", 1))
    client = deployment.client("benchmark@anl.gov")
    workload = _workload(spec)
    # Warm the gateway's token/introspection cache with one request so the
    # measured run matches the paper's steady-state deployment.
    warm = client.submit(
        workload.generate(spec.model, num_requests=1, id_prefix="warmup")[0])
    deployment.env.run(until=warm)

    requests = workload.generate(spec.model, num_requests=spec.num_requests)
    if params.get("stream"):
        for request in requests:
            request.stream = True
    bench = BenchmarkClient(deployment.env, client, label="FIRST")
    arrival = _arrival_spec(spec).build()
    label = spec.label or f"FIRST @ {arrival.label}"
    proc = deployment.env.process(
        bench.run(requests, arrival=arrival, summary_label=label))
    summary = deployment.env.run(until=proc)
    mergeable = MergeableSummary.from_records(bench.collector, label=label,
                                              duration_s=summary.duration_s)
    return {"summary": summary, "mergeable": mergeable}


def run_direct_cell(spec: ScenarioSpec) -> dict:
    """vLLM-Direct baseline path (client → API server → engine)."""
    from ..baselines import DirectVLLMTarget
    from ..cluster import Node, dgx_a100_spec
    from ..core import calibration
    from ..serving import EngineConfig, default_catalog

    env = Environment(queue=spec.kernel_queue)
    catalog = default_catalog()
    catalog_spec = catalog.get(spec.model)
    nodes = [Node(f"direct-{i}", dgx_a100_spec())
             for i in range(max(1, catalog_spec.default_tp // 8))]
    pending, ready = DirectVLLMTarget.launch(
        env, catalog_spec, nodes,
        perf_config=calibration.default_perf_config(),
        engine_config=EngineConfig(generate_text=False),
        api_config=calibration.default_api_server_config(),
    )
    env.run(until=ready)
    target = pending.materialise()

    requests = _workload(spec).generate(catalog_spec.name,
                                        num_requests=spec.num_requests)
    bench = BenchmarkClient(env, target, label="vLLM Direct")
    arrival = _arrival_spec(spec).build()
    label = spec.label or f"vLLM Direct @ {arrival.label}"
    proc = env.process(bench.run(requests, arrival=arrival, summary_label=label))
    summary = env.run(until=proc)
    mergeable = MergeableSummary.from_records(bench.collector, label=label,
                                              duration_s=summary.duration_s)
    return {"summary": summary, "mergeable": mergeable}


# ------------------------------------------------------------------ autoscaling
def run_autoscale_policy_cell(spec: ScenarioSpec) -> dict:
    """One autoscaling-policy scenario on the full FIRST stack.

    Params: ``deployment`` (a :class:`~repro.core.DeploymentConfig` whose
    single cluster hosts ``spec.model`` with an ``AutoscaleConfig``),
    ``policy`` (name, for the scheduled-epoch fix and the report),
    ``scenario`` (report key), ``floor`` and ``quiet_tail_s`` (the
    post-traffic leak/floor check).  Returns the report entry dict the
    autoscaling benchmark prints, plus summary/mergeable metrics.
    """
    from ..core import FIRSTDeployment

    params = spec.params
    config = params["deployment"]
    config.kernel_queue = spec.kernel_queue
    policy = params["policy"]
    floor = params.get("floor", 1)
    quiet_tail_s = params.get("quiet_tail_s", 420.0)
    model = spec.model

    deployment = FIRSTDeployment(config)
    deployment.warm_up(model, instances=floor)
    client = deployment.client("benchmark@anl.gov")
    workload = _workload(spec)
    warm = client.submit(
        workload.generate(model, num_requests=1, id_prefix="warmup")[0])
    deployment.env.run(until=warm)
    traffic_start = deployment.now

    cluster_name = config.clusters[0].name
    endpoint = deployment.endpoints[f"ep-{cluster_name}"]
    pool = endpoint.pools[model]
    if policy == "scheduled":
        # The cron plan's day starts when traffic opens, not at sim t=0.
        pool.replicas.policy.epoch_s = traffic_start

    requests = workload.generate(model, num_requests=spec.num_requests)
    arrival = _arrival_spec(spec).build()
    bench = BenchmarkClient(deployment.env, client, label=policy)
    proc = deployment.env.process(
        bench.run(requests, arrival=arrival,
                  summary_label=spec.label or f"{policy} @ {arrival.label}"))
    summary = deployment.env.run(until=proc)

    scheduler = deployment.schedulers[cluster_name]
    gpu_hours = scheduler.gpu_seconds() / 3600.0
    actions = pool.replicas.actions
    peak = max([a["to"] for a in actions], default=floor)

    # Quiet tail: scale-down-capable policies must return to the floor with
    # nothing leaked (the scale-up/scale-down cycle acceptance check).
    deployment.run_for(quiet_tail_s)
    active_jobs = [j for j in scheduler.all_jobs if not j.state.terminal]
    probe = client.chat_completion(
        model, [{"role": "user", "content": "post-cycle route probe"}],
        max_tokens=16,
    )
    entry = {
        "policy": policy,
        "scenario": params.get("scenario", ""),
        "label": summary.label,
        "num_requests": summary.num_requests,
        "num_successful": summary.num_successful,
        "duration_s": round(summary.duration_s, 1),
        "traffic_start_s": round(traffic_start, 1),
        "throughput_req_s": round(summary.request_throughput, 3),
        "p50_latency_s": round(summary.median_latency_s, 3),
        "mean_latency_s": round(summary.mean_latency_s, 3),
        "p99_latency_s": round(summary.p99_latency_s, 3),
        "gpu_hours": round(gpu_hours, 3),
        "peak_instances": peak,
        "launches": pool.replicas.launches,
        "drains": pool.replicas.drains,
        "final_ready": len(pool.ready_instances),
        "final_draining": len(pool.draining),
        "final_provisioned": pool.provisioned_count,
        "active_jobs_after_tail": len(active_jobs),
        "jobs_drained": scheduler.jobs_drained,
        "route_probe_ok": "error" not in probe,
    }
    mergeable = MergeableSummary.from_records(bench.collector, label=summary.label,
                                              duration_s=summary.duration_s)
    mergeable.counters["gpu_hours"] = gpu_hours
    return {"summary": summary, "mergeable": mergeable, "entry": entry}


# ------------------------------------------------------------------ partitioned federation
def run_partitioned_cell(spec: ScenarioSpec) -> dict:
    """One partitioned federated run under the conservative-window parallel
    plane (:mod:`repro.parallel`).

    Params: ``clusters`` — a list of :class:`~repro.parallel.ClusterShardSpec`
    (or kwargs dicts for them); ``stream``; ``relay`` (RelayConfig field
    overrides); ``partition_workers`` — worker processes *inside* the cell
    (default 1: serial partitions, so sweep workers never nest process
    pools).  The payload adds the run's bit-identity ``fingerprint``, the
    window/overhead ``partition_stats``, and the federation-wide ``registry``
    snapshot that :meth:`~repro.sweep.runner.SweepResult.merged_registry`
    reduces across cells.
    """
    from ..parallel import ClusterShardSpec, FederatedScenario, PartitionedDeployment

    params = spec.params
    clusters = params.get("clusters") or [{"name": "cluster0"}, {"name": "cluster1"}]
    shards = [shard if isinstance(shard, ClusterShardSpec)
              else ClusterShardSpec(**shard) for shard in clusters]
    scenario = FederatedScenario(
        clusters=shards,
        model=spec.model or FederatedScenario.model,
        num_requests=spec.num_requests,
        arrival=_arrival_spec(spec),
        seed=int(spec.tags.get("seed", params.get("seed", 0))),
        kernel_queue=spec.kernel_queue,
        stream=bool(params.get("stream", False)),
        relay=dict(params.get("relay") or {}),
    )
    result = PartitionedDeployment(
        scenario,
        workers=int(params.get("partition_workers", 1)),
        mp_context=params.get("partition_mp_context", "spawn"),
    ).run()

    records = result.records
    if records:
        duration = (max(r.completion_time for r in records)
                    - min(r.send_time for r in records))
    else:
        duration = 0.0
    return _payload(records, spec.label or spec.key, max(duration, 1e-9), extras={
        "registry": result.registry.to_dict(),
        "fingerprint": result.fingerprint,
        "partition_stats": result.stats.to_dict(),
        "partition_workers": result.workers,
    })


#: Short runner names usable as ``ScenarioSpec.runner``.
RUNNERS = {
    "engine": run_engine_cell,
    "first": run_first_cell,
    "direct": run_direct_cell,
    "autoscale_policy": run_autoscale_policy_cell,
    "partitioned": run_partitioned_cell,
}
