"""Registry of federated endpoints.

The development (cluster-agnostic) API URL "queries the database to see
which clusters can host the inference" (§4.5).  The registry is that
database table: for each endpoint it stores the clusters and models it
serves plus the facility status provider used for node-availability
queries.  Priority is simply the order in which endpoints are registered,
matching the paper's "priority is determined simply by the order in which
endpoints are listed in the configuration registry".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cluster import FacilityStatusProvider
from ..common import NotFoundError
from ..faas import ComputeEndpoint

__all__ = ["FederatedEndpoint", "FederationRegistry"]


@dataclass
class FederatedEndpoint:
    """One endpoint participating in the federation."""

    endpoint: ComputeEndpoint
    status_provider: FacilityStatusProvider
    #: Registration order; lower = higher priority for the fallback rule.
    priority: int = 0

    @property
    def endpoint_id(self) -> str:
        return self.endpoint.endpoint_id

    @property
    def cluster(self) -> str:
        return self.endpoint.cluster_name

    def hosts(self, model: str) -> bool:
        return self.endpoint.hosts_model(model)


class FederationRegistry:
    """Ordered collection of federated endpoints.

    Observers (the placement plane's :class:`~repro.placement.TopologyView`)
    can :meth:`subscribe` to be told when endpoints join or leave the
    federation, so their per-endpoint state attaches and detaches with the
    membership instead of being rebuilt per request.
    """

    def __init__(self):
        self._entries: List[FederatedEndpoint] = []
        self._observers: List[object] = []

    def subscribe(self, observer) -> None:
        """Register an observer with ``on_register``/``on_deregister`` hooks."""
        if observer not in self._observers:
            self._observers.append(observer)

    def unsubscribe(self, observer) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def register(self, endpoint: ComputeEndpoint,
                 status_provider: FacilityStatusProvider) -> FederatedEndpoint:
        entry = FederatedEndpoint(
            endpoint=endpoint,
            status_provider=status_provider,
            priority=len(self._entries),
        )
        self._entries.append(entry)
        for observer in self._observers:
            observer.on_register(entry)
        return entry

    @property
    def entries(self) -> List[FederatedEndpoint]:
        return list(self._entries)

    def endpoints_for_model(self, model: str) -> List[FederatedEndpoint]:
        """Endpoints configured to host ``model``, in priority order."""
        matches = [e for e in self._entries if e.hosts(model)]
        return sorted(matches, key=lambda e: e.priority)

    def get(self, endpoint_id: str) -> FederatedEndpoint:
        for entry in self._entries:
            if entry.endpoint_id == endpoint_id:
                return entry
        raise NotFoundError(f"Unknown federated endpoint: {endpoint_id}")

    def deregister(self, endpoint_id: str) -> FederatedEndpoint:
        """Remove an endpoint from the federation (e.g. a facility going dark).

        Consumers holding stale references — such as the gateway's routing
        cache — must handle the resulting :class:`NotFoundError` from
        :meth:`get` and re-route.
        """
        entry = self.get(endpoint_id)
        self._entries.remove(entry)
        for observer in self._observers:
            observer.on_deregister(entry)
        return entry

    @property
    def clusters(self) -> List[str]:
        return [e.cluster for e in self._entries]

    def hosted_models(self) -> List[str]:
        models = []
        for entry in self._entries:
            for hosting in entry.endpoint.config.models:
                if hosting.model not in models:
                    models.append(hosting.model)
        return models
