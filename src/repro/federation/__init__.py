"""Federation layer: endpoint registry and routing policies (§4.5).

The concrete routing policies moved onto the placement plane in
Federation v2 (:mod:`repro.placement`); they are re-exported here so
existing ``from repro.federation import PriorityRouter`` call sites keep
working.
"""

from .registry import FederatedEndpoint, FederationRegistry
from .router import (
    FederationRouter,
    FirstConfiguredRouter,
    RandomRouter,
    RoutingDecision,
)
from ..placement.policies import LeastLoadedRouter, PriorityRouter, SLORouter

__all__ = [
    "FederationRegistry",
    "FederatedEndpoint",
    "FederationRouter",
    "PriorityRouter",
    "LeastLoadedRouter",
    "SLORouter",
    "RandomRouter",
    "FirstConfiguredRouter",
    "RoutingDecision",
]
