"""Federation layer: endpoint registry and routing policies (§4.5)."""

from .registry import FederatedEndpoint, FederationRegistry
from .router import (
    FederationRouter,
    FirstConfiguredRouter,
    PriorityRouter,
    RandomRouter,
    RoutingDecision,
)

__all__ = [
    "FederationRegistry",
    "FederatedEndpoint",
    "FederationRouter",
    "PriorityRouter",
    "RandomRouter",
    "FirstConfiguredRouter",
    "RoutingDecision",
]
