"""Federated endpoint selection.

The paper's proof-of-concept federation algorithm (§4.5):

1. prefer an endpoint where the requested model is already **running or
   queued** (low latency: no cold start);
2. otherwise prefer an endpoint whose cluster has **free nodes**;
3. otherwise fall back to the **first endpoint configured** for the model.

Two alternative policies (random, first-configured-always) are provided for
the ablation benchmark in ``benchmarks/bench_federation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common import NotFoundError, RandomSource
from .registry import FederatedEndpoint, FederationRegistry

__all__ = ["RoutingDecision", "FederationRouter", "PriorityRouter", "RandomRouter",
           "FirstConfiguredRouter"]


@dataclass
class RoutingDecision:
    """Outcome of a routing query (kept for observability/logging)."""

    model: str
    endpoint_id: str
    cluster: str
    rule: str
    candidates: int

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "endpoint": self.endpoint_id,
            "cluster": self.cluster,
            "rule": self.rule,
            "candidates": self.candidates,
        }


class FederationRouter:
    """Base router: subclasses implement :meth:`_choose`."""

    policy_name = "base"

    def __init__(self, registry: FederationRegistry):
        self.registry = registry
        self.decisions: List[RoutingDecision] = []

    def select(self, model: str):
        """Simulation process: choose an endpoint for ``model``."""
        candidates = self.registry.endpoints_for_model(model)
        if not candidates:
            raise NotFoundError(f"No federated endpoint hosts model {model}")
        chosen, rule = yield from self._choose(model, candidates)
        decision = RoutingDecision(
            model=model,
            endpoint_id=chosen.endpoint_id,
            cluster=chosen.cluster,
            rule=rule,
            candidates=len(candidates),
        )
        self.decisions.append(decision)
        return chosen.endpoint

    def _choose(self, model: str, candidates: List[FederatedEndpoint]):
        raise NotImplementedError
        yield  # pragma: no cover


class PriorityRouter(FederationRouter):
    """The paper's priority-based selection algorithm."""

    policy_name = "priority"

    def _choose(self, model: str, candidates: List[FederatedEndpoint]):
        # Rule 1: model already running or queued somewhere.
        for entry in candidates:
            statuses = entry.endpoint.model_status(model)
            if any(s.state in ("running", "starting", "queued") for s in statuses):
                return entry, "active-instance"
        # Rule 2: a cluster with available nodes.
        for entry in candidates:
            status = yield from entry.status_provider.query()
            if status.free_nodes > 0:
                return entry, "free-nodes"
        # Rule 3: the first endpoint configured for the model.
        return candidates[0], "first-configured"
        yield  # pragma: no cover (keeps this a generator even without queries)


class RandomRouter(FederationRouter):
    """Ablation: uniformly random choice among configured endpoints."""

    policy_name = "random"

    def __init__(self, registry: FederationRegistry, seed: int = 11):
        super().__init__(registry)
        self._random = RandomSource(seed=seed)

    def _choose(self, model: str, candidates: List[FederatedEndpoint]):
        if False:  # pragma: no cover - keep generator form
            yield None
        return self._random.choice(candidates), "random"


class FirstConfiguredRouter(FederationRouter):
    """Ablation: always the first configured endpoint (no status awareness)."""

    policy_name = "first-configured"

    def _choose(self, model: str, candidates: List[FederatedEndpoint]):
        if False:  # pragma: no cover - keep generator form
            yield None
        return candidates[0], "first-configured"
