"""Federated endpoint selection.

Since Federation v2 the concrete policies live on the placement plane
(:mod:`repro.placement.policies`): the paper's §4.5 priority rule, a
least-loaded router and an SLO-aware router all read the shared
:class:`~repro.placement.TopologyView` instead of probing endpoint and
scheduler state privately.  This module keeps the policy-agnostic base —
the select/record machinery every router shares — plus the two stateless
ablation policies (random, first-configured-always) used by
``benchmarks/bench_federation.py``.

Routing decisions are kept in a *bounded* deque (long sweeps used to grow
the log without limit); cumulative per-endpoint/per-rule counters survive
the eviction and are surfaced on the gateway dashboard via
:meth:`FederationRouter.summary`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..common import NotFoundError, RandomSource
from .registry import FederatedEndpoint, FederationRegistry

__all__ = ["RoutingDecision", "FederationRouter", "RandomRouter",
           "FirstConfiguredRouter"]


@dataclass
class RoutingDecision:
    """Outcome of a routing query (kept for observability/logging)."""

    model: str
    endpoint_id: str
    cluster: str
    rule: str
    candidates: int
    tenant: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "endpoint": self.endpoint_id,
            "cluster": self.cluster,
            "rule": self.rule,
            "candidates": self.candidates,
            "tenant": self.tenant,
        }


class FederationRouter:
    """Base router: subclasses implement :meth:`_choose`."""

    policy_name = "base"

    def __init__(self, registry: FederationRegistry, max_decisions: int = 512):
        self.registry = registry
        #: Bounded log of the most recent decisions (observability; the
        #: cumulative counters below never evict).
        self.decisions: Deque[RoutingDecision] = deque(maxlen=max_decisions)
        self.decisions_total = 0
        self.decisions_by_endpoint: Counter = Counter()
        self.decisions_by_rule: Counter = Counter()

    def select(self, model: str, tenant: Optional[str] = None):
        """Simulation process: choose an endpoint for ``model``.

        ``tenant`` is the authenticated caller; tenant-aware policies (the
        SLO router) use it to pick the applicable SLO, everything else may
        ignore it.
        """
        candidates = self.registry.endpoints_for_model(model)
        if not candidates:
            raise NotFoundError(f"No federated endpoint hosts model {model}")
        chosen, rule = yield from self._choose(model, candidates, tenant)
        decision = RoutingDecision(
            model=model,
            endpoint_id=chosen.endpoint_id,
            cluster=chosen.cluster,
            rule=rule,
            candidates=len(candidates),
            tenant=tenant,
        )
        self.decisions.append(decision)
        self.decisions_total += 1
        self.decisions_by_endpoint[chosen.endpoint_id] += 1
        self.decisions_by_rule[rule] += 1
        return chosen.endpoint

    def _choose(self, model: str, candidates: List[FederatedEndpoint],
                tenant: Optional[str] = None):
        raise NotImplementedError
        yield  # pragma: no cover

    def summary(self) -> dict:
        """Cumulative decision counters (dashboard's ``routing`` block)."""
        return {
            "policy": self.policy_name,
            "total": self.decisions_total,
            "recent": len(self.decisions),
            "by_endpoint": dict(self.decisions_by_endpoint),
            "by_rule": dict(self.decisions_by_rule),
        }


class RandomRouter(FederationRouter):
    """Ablation: uniformly random choice among configured endpoints."""

    policy_name = "random"

    def __init__(self, registry: FederationRegistry, seed: int = 11,
                 max_decisions: int = 512):
        super().__init__(registry, max_decisions=max_decisions)
        self._random = RandomSource(seed=seed)

    def _choose(self, model: str, candidates: List[FederatedEndpoint],
                tenant: Optional[str] = None):
        if False:  # pragma: no cover - keep generator form
            yield None
        return self._random.choice(candidates), "random"


class FirstConfiguredRouter(FederationRouter):
    """Ablation: always the first configured endpoint (no status awareness)."""

    policy_name = "first-configured"

    def _choose(self, model: str, candidates: List[FederatedEndpoint],
                tenant: Optional[str] = None):
        if False:  # pragma: no cover - keep generator form
            yield None
        return candidates[0], "first-configured"
