"""Identities and identity providers.

Globus Auth lets "users login from different institutions across the world
with multi-factor authentication" (§3.1.2).  The reproduction models the
pieces the gateway depends on: institutional identity providers, user
identities, and linked identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["IdentityProvider", "Identity"]


@dataclass(frozen=True)
class IdentityProvider:
    """An institutional identity provider (e.g. a university SSO)."""

    name: str
    domain: str
    requires_mfa: bool = True

    def issues(self, username: str) -> bool:
        """Whether ``username`` belongs to this provider's domain."""
        return username.endswith("@" + self.domain)


@dataclass
class Identity:
    """A user identity as seen by the auth service."""

    username: str
    provider: IdentityProvider
    display_name: str = ""
    #: Additional usernames linked to this identity (Globus identity linking).
    linked_usernames: List[str] = field(default_factory=list)
    active: bool = True

    @property
    def identity_id(self) -> str:
        return f"identity:{self.username}"

    @property
    def domain(self) -> str:
        return self.username.split("@", 1)[1] if "@" in self.username else ""

    def matches(self, username: str) -> bool:
        return username == self.username or username in self.linked_usernames
