"""Globus-Groups-like group membership service.

The gateway "uses Globus Groups to implement role-based access control ...
researchers working on sensitive projects may be granted special access to
specific models or computational resources" (§3.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

__all__ = ["Group", "GroupService"]


@dataclass
class Group:
    """A named group with member usernames and optional admin usernames."""

    name: str
    members: Set[str] = field(default_factory=set)
    admins: Set[str] = field(default_factory=set)
    description: str = ""


class GroupService:
    """In-memory group membership registry."""

    def __init__(self):
        self._groups: Dict[str, Group] = {}

    def create_group(self, name: str, description: str = "") -> Group:
        if name in self._groups:
            raise ValueError(f"Group {name} already exists")
        group = Group(name=name, description=description)
        self._groups[name] = group
        return group

    def get(self, name: str) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise KeyError(f"Unknown group: {name}") from None

    def add_member(self, group: str, username: str, admin: bool = False) -> None:
        g = self.get(group)
        g.members.add(username)
        if admin:
            g.admins.add(username)

    def remove_member(self, group: str, username: str) -> None:
        g = self.get(group)
        g.members.discard(username)
        g.admins.discard(username)

    def is_member(self, group: str, username: str) -> bool:
        if group not in self._groups:
            return False
        return username in self._groups[group].members

    def is_admin(self, group: str, username: str) -> bool:
        if group not in self._groups:
            return False
        return username in self._groups[group].admins

    def groups_of(self, username: str) -> List[str]:
        return sorted(name for name, g in self._groups.items() if username in g.members)

    @property
    def group_names(self) -> List[str]:
        return sorted(self._groups)
