"""The Globus-Auth-like identity and access management service.

This is the cloud service the gateway talks to: it registers identity
providers and users, runs login flows (issuing 48-hour access tokens plus
refresh tokens), introspects tokens (with a network latency, which is what
the gateway's token cache — Optimization 2 in §5.3.1 — avoids paying per
request), refreshes tokens, and authenticates confidential clients (the
admin-owned client used by the Globus-Compute-like endpoints, §3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common import AuthenticationError, AuthorizationError, RateLimitError
from ..sim import Environment
from .groups import GroupService
from .identity import Identity, IdentityProvider
from .policies import PolicyEngine
from .tokens import DEFAULT_TOKEN_LIFETIME_S, TokenBundle, TokenInfo, mint_token_pair

__all__ = ["AuthServiceConfig", "ConfidentialClient", "GlobusAuthLikeService"]


@dataclass
class AuthServiceConfig:
    """Latency and policy parameters of the auth service."""

    token_lifetime_s: float = DEFAULT_TOKEN_LIFETIME_S
    #: Network round-trip for a token introspection call from the gateway.
    introspection_latency_s: float = 0.3
    #: Latency of a full login flow (browser redirects, MFA).
    login_latency_s: float = 2.0
    #: Maximum introspection calls per second before the service rate-limits
    #: the caller (the paper notes FIRST was at risk of being "rate-limited
    #: by the Globus services" before caching was added).
    introspection_rate_limit_per_s: float = 50.0
    rate_limit_window_s: float = 1.0


@dataclass
class ConfidentialClient:
    """An admin-owned OAuth2 confidential client (client id + secret)."""

    client_id: str
    client_secret: str
    owner: str
    description: str = ""


class GlobusAuthLikeService:
    """In-simulation identity/authorization service."""

    def __init__(self, env: Environment, config: Optional[AuthServiceConfig] = None):
        self.env = env
        self.config = config or AuthServiceConfig()
        self.groups = GroupService()
        self.policies = PolicyEngine(self.groups)
        self._providers: Dict[str, IdentityProvider] = {}
        self._identities: Dict[str, Identity] = {}
        self._tokens: Dict[str, TokenInfo] = {}
        self._refresh_tokens: Dict[str, str] = {}  # refresh -> username
        self._clients: Dict[str, ConfidentialClient] = {}
        self._serial = 0
        # introspection rate-limiting window
        self._window_start = 0.0
        self._window_calls = 0
        # counters
        self.introspection_calls = 0
        self.logins = 0

    # -- registration ---------------------------------------------------------
    def register_provider(self, provider: IdentityProvider) -> None:
        self._providers[provider.domain] = provider

    def register_user(self, username: str, display_name: str = "") -> Identity:
        domain = username.split("@", 1)[1] if "@" in username else ""
        provider = self._providers.get(domain)
        if provider is None:
            raise AuthenticationError(
                f"No identity provider registered for domain {domain!r}"
            )
        identity = Identity(username=username, provider=provider,
                            display_name=display_name or username)
        self._identities[username] = identity
        return identity

    def register_confidential_client(self, client_id: str, client_secret: str,
                                     owner: str, description: str = "") -> ConfidentialClient:
        client = ConfidentialClient(client_id, client_secret, owner, description)
        self._clients[client_id] = client
        return client

    # -- login / tokens ---------------------------------------------------------
    def login(self, username: str, scopes: Optional[List[str]] = None):
        """Simulation process: run a login flow and return a :class:`TokenBundle`."""
        if self.config.login_latency_s > 0:
            yield self.env.timeout(self.config.login_latency_s)
        return self.issue_token(username, scopes)

    def issue_token(self, username: str, scopes: Optional[List[str]] = None) -> TokenBundle:
        """Immediately issue a token bundle (used by tests and the client SDK)."""
        identity = self._identities.get(username)
        if identity is None or not identity.active:
            raise AuthenticationError(f"Unknown or inactive identity: {username}")
        decision = self.policies.check(username, "service")
        if not decision.allowed:
            raise AuthorizationError(decision.reason)
        scopes = scopes or ["inference:all"]
        self._serial += 1
        now = self.env.now
        access, refresh = mint_token_pair(username, now, self._serial)
        info = TokenInfo(
            token=access,
            username=username,
            scopes=list(scopes),
            issued_at=now,
            expires_at=now + self.config.token_lifetime_s,
        )
        self._tokens[access] = info
        self._refresh_tokens[refresh] = username
        self.logins += 1
        return TokenBundle(
            access_token=access,
            refresh_token=refresh,
            username=username,
            scopes=list(scopes),
            issued_at=now,
            expires_at=info.expires_at,
        )

    def refresh(self, refresh_token: str, scopes: Optional[List[str]] = None) -> TokenBundle:
        """Exchange a refresh token for a fresh access token (no new login needed)."""
        username = self._refresh_tokens.get(refresh_token)
        if username is None:
            raise AuthenticationError("Invalid refresh token")
        del self._refresh_tokens[refresh_token]
        return self.issue_token(username, scopes)

    def revoke(self, access_token: str) -> None:
        info = self._tokens.get(access_token)
        if info is not None:
            info.active = False

    # -- introspection -----------------------------------------------------------
    def introspect_sync(self, access_token: str) -> TokenInfo:
        """Pure-logic introspection (no latency); used by the cached fast path."""
        info = self._tokens.get(access_token)
        if info is None:
            raise AuthenticationError("Unknown access token")
        return info

    def introspect(self, access_token: str):
        """Simulation process: introspect a token at the auth service.

        Pays the network latency and counts against the caller's rate limit.
        """
        now = self.env.now
        if now - self._window_start >= self.config.rate_limit_window_s:
            self._window_start = now
            self._window_calls = 0
        self._window_calls += 1
        self.introspection_calls += 1
        limit = self.config.introspection_rate_limit_per_s * self.config.rate_limit_window_s
        if self._window_calls > limit:
            raise RateLimitError("Auth service introspection rate limit exceeded")
        if self.config.introspection_latency_s > 0:
            yield self.env.timeout(self.config.introspection_latency_s)
        return self.introspect_sync(access_token)

    # -- confidential clients ------------------------------------------------------
    def authenticate_client(self, client_id: str, client_secret: str) -> ConfidentialClient:
        client = self._clients.get(client_id)
        if client is None or client.client_secret != client_secret:
            raise AuthenticationError("Invalid confidential client credentials")
        return client

    # -- queries ----------------------------------------------------------------------
    def get_identity(self, username: str) -> Identity:
        identity = self._identities.get(username)
        if identity is None:
            raise AuthenticationError(f"Unknown identity: {username}")
        return identity

    @property
    def registered_users(self) -> List[str]:
        return sorted(self._identities)
