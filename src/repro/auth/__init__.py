"""Globus-Auth-like identity and access management substrate.

Provides identity providers, user identities, OAuth2-style access/refresh
tokens (48-hour lifetime), token introspection with realistic latency and
rate limits, groups for role-based access control, declarative access
policies, and admin-owned confidential clients — everything the Inference
Gateway's authorization layer (§3.1.2) and the compute endpoints (§3.2.3)
depend on.
"""

from .groups import Group, GroupService
from .identity import Identity, IdentityProvider
from .policies import AccessPolicy, PolicyDecision, PolicyEngine
from .service import AuthServiceConfig, ConfidentialClient, GlobusAuthLikeService
from .tokens import DEFAULT_TOKEN_LIFETIME_S, TokenBundle, TokenInfo

__all__ = [
    "Identity",
    "IdentityProvider",
    "TokenInfo",
    "TokenBundle",
    "DEFAULT_TOKEN_LIFETIME_S",
    "Group",
    "GroupService",
    "AccessPolicy",
    "PolicyDecision",
    "PolicyEngine",
    "GlobusAuthLikeService",
    "AuthServiceConfig",
    "ConfidentialClient",
]
