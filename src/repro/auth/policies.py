"""Access policies.

"The API uses Globus policies to control access to the platform and secure
the HPC resources" (§3.1.2).  A policy combines identity-provider/domain
restrictions with group requirements, evaluated per resource (the whole
service, a specific model, or a specific cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .groups import GroupService

__all__ = ["PolicyDecision", "AccessPolicy", "PolicyEngine"]


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of a policy evaluation."""

    allowed: bool
    reason: str = ""


@dataclass
class AccessPolicy:
    """Declarative access policy for a resource."""

    name: str
    #: Resource this policy protects: "service", "model:<name>" or "cluster:<name>".
    resource: str = "service"
    allowed_domains: List[str] = field(default_factory=list)
    required_groups: List[str] = field(default_factory=list)
    denied_users: List[str] = field(default_factory=list)
    #: Require the identity provider to enforce MFA (high-assurance policy).
    require_mfa: bool = False

    def evaluate(
        self,
        username: str,
        groups: GroupService,
        mfa_satisfied: bool = True,
    ) -> PolicyDecision:
        if username in self.denied_users:
            return PolicyDecision(False, f"user {username} is explicitly denied")
        if self.allowed_domains:
            domain = username.split("@", 1)[1] if "@" in username else ""
            if domain not in self.allowed_domains:
                return PolicyDecision(
                    False, f"domain {domain!r} not in allowed domains for {self.resource}"
                )
        for group in self.required_groups:
            if not groups.is_member(group, username):
                return PolicyDecision(False, f"user not in required group {group!r}")
        if self.require_mfa and not mfa_satisfied:
            return PolicyDecision(False, "multi-factor authentication required")
        return PolicyDecision(True, "allowed")


class PolicyEngine:
    """Evaluates the set of policies that apply to a resource."""

    def __init__(self, groups: GroupService):
        self.groups = groups
        self._policies: List[AccessPolicy] = []

    def add_policy(self, policy: AccessPolicy) -> None:
        self._policies.append(policy)

    @property
    def policies(self) -> Sequence[AccessPolicy]:
        return tuple(self._policies)

    def policies_for(self, resource: str) -> List[AccessPolicy]:
        """Policies protecting ``resource`` (service-wide policies always apply)."""
        return [p for p in self._policies if p.resource in ("service", resource)]

    def check(self, username: str, resource: str = "service",
              mfa_satisfied: bool = True) -> PolicyDecision:
        for policy in self.policies_for(resource):
            decision = policy.evaluate(username, self.groups, mfa_satisfied)
            if not decision.allowed:
                return decision
        return PolicyDecision(True, "allowed")
