"""OAuth2-style access and refresh tokens.

Access tokens "are valid for 48 hours and can be automatically refreshed"
(§4.6); the gateway passes them in request headers and caches introspection
results for rapid repeated requests (§3.1.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["TokenInfo", "TokenBundle", "DEFAULT_TOKEN_LIFETIME_S"]

#: 48 hours, per §4.6 of the paper.
DEFAULT_TOKEN_LIFETIME_S = 48 * 3600.0


def _mint(seed: str) -> str:
    return hashlib.sha256(seed.encode()).hexdigest()[:40]


@dataclass
class TokenInfo:
    """Result of introspecting an access token."""

    token: str
    username: str
    scopes: List[str]
    issued_at: float
    expires_at: float
    client_id: Optional[str] = None
    active: bool = True

    def is_valid(self, now: float, required_scope: Optional[str] = None) -> bool:
        if not self.active or now >= self.expires_at:
            return False
        if required_scope is not None and required_scope not in self.scopes:
            return False
        return True

    @property
    def lifetime_s(self) -> float:
        return self.expires_at - self.issued_at


@dataclass
class TokenBundle:
    """Access + refresh token pair returned by a login flow."""

    access_token: str
    refresh_token: str
    username: str
    scopes: List[str]
    issued_at: float
    expires_at: float

    @property
    def expires_in_s(self) -> float:
        return self.expires_at - self.issued_at


def mint_token_pair(username: str, issued_at: float, serial: int) -> tuple:
    """Create a deterministic (access, refresh) token pair."""
    access = _mint(f"access:{username}:{issued_at}:{serial}")
    refresh = _mint(f"refresh:{username}:{issued_at}:{serial}")
    return access, refresh
