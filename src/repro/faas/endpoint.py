"""Compute endpoints deployed on HPC clusters.

An endpoint is the piece FIRST administrators deploy inside each facility
(§3.2.1): it receives tasks from the cloud relay, acquires compute nodes
through the local batch scheduler, launches model-serving instances on
them, and executes the pre-registered inference functions.  The endpoint
implements the configuration features of §3.2.2:

* **Auto-scaling** — additional instances (scheduler jobs) are launched when
  the existing ones are saturated, up to ``max_instances``.
* **Hot-node management** — instances stay resident after finishing work and
  are only released after ``hot_idle_timeout_s`` (2 hours by default).
* **Fault tolerance** — a process-management monitor restarts failed
  instances.
* **Resource utilisation** — several models can be co-located on one node as
  long as GPUs are free.
* **Security** — only functions pre-registered by administrators (and passed
  down by the relay) are executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..autoscale import (
    AutoscaleConfig,
    AutoscaleController,
    MetricsFeed,
    ReplicaPool,
    make_policy,
)
from ..cluster import JobRequest, JobState, SchedulerBase
from ..common import ConfigurationError, IdGenerator, NotFoundError, sim_logger
from ..obs.trace import TRACE_KEY
from ..serving import (
    APIServerConfig,
    EmbeddingServingInstance,
    EngineConfig,
    InferenceRequest,
    InstanceState,
    ModelCatalog,
    OfflineBatchRunner,
    PerfModelConfig,
    PerformanceModel,
    STREAM_CHANNEL_KEY,
    ServingInstance,
)
from ..sim import Environment, Event, Resource
from .functions import HANDLER_BATCH, HANDLER_CHAT, HANDLER_EMBEDDING, RegisteredFunction
from .task import TaskRecord

__all__ = ["ModelHostingConfig", "EndpointConfig", "ModelPoolStatus", "ComputeEndpoint"]


@dataclass
class ModelHostingConfig:
    """How one model is hosted on an endpoint."""

    model: str
    backend: str = "vllm"
    tensor_parallel: Optional[int] = None
    nodes_per_instance: int = 1
    #: Maximum number of instances (scheduler jobs) auto-scaling may launch.
    max_instances: int = 1
    #: Maximum concurrent inference tasks per instance (bounds the number of
    #: open connections against the instance's API server).
    max_parallel_tasks: int = 96
    #: Idle time after which a hot instance is released (2 h in the paper).
    hot_idle_timeout_s: float = 2 * 3600.0
    #: Scheduler walltime requested for each instance job.
    walltime_s: float = 12 * 3600.0
    #: Queue depth (waiting tasks) per ready instance that triggers scale-up.
    scale_up_queue_per_instance: int = 8
    #: Autoscaling control-plane configuration.  ``None`` keeps the legacy
    #: demand-driven queue-depth behaviour (reactive scale-up only, no
    #: periodic controller, scale-down via the hot-idle reaper).
    autoscale: Optional[AutoscaleConfig] = None


@dataclass
class EndpointConfig:
    """Endpoint-level configuration."""

    endpoint_id: str
    cluster: str
    models: List[ModelHostingConfig] = field(default_factory=list)
    #: Interval at which the endpoint polls for new tasks / runs its monitors.
    poll_interval_s: float = 1.0
    #: Interval of the idle/health monitor loop.
    monitor_interval_s: float = 30.0
    #: Confidential client id this endpoint trusts (None = accept relay tasks).
    required_client_id: Optional[str] = None

    def hosting_for(self, model: str) -> ModelHostingConfig:
        for cfg in self.models:
            if cfg.model == model:
                return cfg
        raise NotFoundError(f"Model {model} is not hosted on endpoint {self.endpoint_id}")

    def hosts(self, model: str) -> bool:
        return any(cfg.model == model for cfg in self.models)


@dataclass
class ModelPoolStatus:
    """Status of one hosted model, as surfaced by the gateway's ``/jobs`` endpoint."""

    model: str
    endpoint_id: str
    cluster: str
    running_instances: int
    starting_instances: int
    queued_jobs: int
    waiting_tasks: int
    draining_instances: int = 0

    @property
    def state(self) -> str:
        """Aggregate state string: running / draining / starting / queued / cold."""
        if self.running_instances > 0:
            return "running"
        if self.draining_instances > 0:
            return "draining"
        if self.starting_instances > 0:
            return "starting"
        if self.queued_jobs > 0:
            return "queued"
        return "cold"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "endpoint": self.endpoint_id,
            "cluster": self.cluster,
            "state": self.state,
            "running_instances": self.running_instances,
            "starting_instances": self.starting_instances,
            "draining_instances": self.draining_instances,
            "queued_jobs": self.queued_jobs,
            "waiting_tasks": self.waiting_tasks,
        }


#: Cold-start guess used by the control plane before the pool has measured
#: one (submit-to-ready: scheduler queue + prologue + model load).
DEFAULT_COLD_START_ESTIMATE_S = 120.0


class _ModelPool:
    """Per-model instance pool with hot-idle and health monitoring.

    Scale decisions (up *and* down) are delegated to the autoscale control
    plane: the pool implements the ``MetricsFeed`` source protocol and the
    ``ReplicaPool`` backend protocol (``launch_one`` / ``start_drain_one``)
    and never decides capacity itself.
    """

    def __init__(self, endpoint: "ComputeEndpoint", hosting: ModelHostingConfig):
        self.endpoint = endpoint
        self.env = endpoint.env
        self.hosting = hosting
        self.spec = endpoint.catalog.get(hosting.model)
        self.instances: List = []
        self.slots: Dict[str, Resource] = {}
        self.jobs: Dict[str, object] = {}  # instance_id -> JobHandle
        self.launching = 0
        self.queued_job_launches = 0
        self.waiting_tasks = 0
        self.restarts = 0
        self.draining: Set[str] = set()
        self.drained = 0
        self.arrivals_total = 0
        self.completions_total = 0
        self._cold_start_observed: Optional[float] = None
        self._ready_signal: Event = self.env.event()
        self._log = sim_logger("repro.faas.endpoint", self.env)
        #: Placement-plane observers notified (with the pool) whenever the
        #: pool's observable state changes; see ``TopologyView``.
        self._observers: List = []

        autoscale = hosting.autoscale
        policy = make_policy(
            autoscale or AutoscaleConfig(policy="queue_depth", scale_down=False),
            queue_per_instance=hosting.scale_up_queue_per_instance,
        )
        self.feed = MetricsFeed(self.env, source=self)
        self.replicas = ReplicaPool(
            self.env,
            self.feed,
            policy,
            backend=self,
            min_instances=autoscale.min_instances if autoscale else 0,
            max_instances=(
                autoscale.max_instances
                if autoscale and autoscale.max_instances is not None
                else hosting.max_instances
            ),
        )
        if autoscale is not None:
            endpoint.autoscaler.add(self.replicas, autoscale.interval_s)
        self.env.process(self._monitor())

    # -- placement-plane observation ----------------------------------------------
    def add_observer(self, callback) -> None:
        """Subscribe ``callback(pool)`` to state-change notifications."""
        if callback not in self._observers:
            self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        if callback in self._observers:
            self._observers.remove(callback)

    def _touch(self) -> None:
        """Notify observers that the pool's observable state changed."""
        for callback in self._observers:
            callback(self)

    # -- queries ---------------------------------------------------------------
    @property
    def ready_instances(self) -> List:
        return [i for i in self.instances if i.is_ready]

    def capacity(self) -> int:
        return len(self.ready_instances) * self.hosting.max_parallel_tasks

    def status(self) -> ModelPoolStatus:
        return ModelPoolStatus(
            model=self.hosting.model,
            endpoint_id=self.endpoint.endpoint_id,
            cluster=self.endpoint.config.cluster,
            running_instances=len(self.ready_instances),
            starting_instances=sum(
                1 for i in self.instances if i.state == InstanceState.STARTING
            ),
            queued_jobs=self.queued_job_launches,
            waiting_tasks=self.waiting_tasks,
            draining_instances=len(self.draining),
        )

    # -- metrics-feed source protocol ---------------------------------------------
    @property
    def model(self) -> str:
        return self.hosting.model

    @property
    def ready_count(self) -> int:
        return len(self.ready_instances)

    @property
    def draining_count(self) -> int:
        return len(self.draining)

    @property
    def instance_count(self) -> int:
        return len(self.instances)

    @property
    def launching_count(self) -> int:
        return self.launching

    @property
    def provisioned_count(self) -> int:
        """Deduplicated non-draining instance count: created instances plus
        launches that have no instance object yet (job still queued)."""
        created_loading = sum(
            1 for i in self.instances if i.state == InstanceState.STARTING
        )
        return (
            len(self.instances)
            + max(0, self.launching - created_loading)
            - len(self.draining)
        )

    @property
    def in_flight_tasks(self) -> int:
        return sum(slot.count for slot in self.slots.values())

    @property
    def slots_per_instance(self) -> int:
        return self.hosting.max_parallel_tasks

    @property
    def kv_utilization(self) -> float:
        pressure = 0.0
        for instance in self.ready_instances:
            kv = getattr(instance.engine, "kv", None)
            if kv is not None:
                pressure = max(pressure, kv.utilization)
        return pressure

    @property
    def cold_start_estimate_s(self) -> float:
        if self._cold_start_observed is not None:
            return self._cold_start_observed
        return DEFAULT_COLD_START_ESTIMATE_S

    # -- scaling -----------------------------------------------------------------
    def ensure_capacity(self) -> None:
        """Demand-driven control-plane check (a task is waiting)."""
        self.replicas.reactive()

    def launch_one(self) -> Event:
        """ReplicaPool backend: launch one instance."""
        return self._launch()

    def _instance_load(self, instance) -> int:
        """Held + queued slots: the load metric shared by admission placement
        and drain-victim selection."""
        slot_res = self.slots[instance.instance_id]
        return slot_res.count + slot_res.queued

    def start_drain_one(self) -> bool:
        """ReplicaPool backend: drain-before-terminate one ready instance.

        Picks the least-loaded ready instance, stops routing new work to it
        and retires it (instance stop + scheduler job release) once every
        in-flight request has finished.
        """
        candidates = self.ready_instances
        if not candidates:
            return False
        instance = min(candidates, key=self._instance_load)
        if not instance.drain():
            return False
        self.draining.add(instance.instance_id)
        self._touch()
        self.env.process(self._drain_proc(instance))
        return True

    def _drain_proc(self, instance):
        poll = max(self.endpoint.config.poll_interval_s, 0.5)
        while instance in self.instances:
            slot = self.slots.get(instance.instance_id)
            busy = instance.in_flight > 0 or (slot is not None and slot.count > 0)
            if not busy:
                break
            yield self.env.timeout(poll)
        self.draining.discard(instance.instance_id)
        self._touch()
        if instance in self.instances:
            self.drained += 1
            self._retire(instance, drained=True)

    def prewarm(self, count: int = 1) -> List[Event]:
        """Explicitly launch up to ``count`` instances (ignores demand)."""
        events = []
        while len(self.instances) + self.launching < min(count, self.hosting.max_instances):
            events.append(self._launch())
        return events

    def _launch(self) -> Event:
        """Submit a scheduler job and bring up an instance on its nodes."""
        done = self.env.event()
        self.launching += 1
        self.queued_job_launches += 1
        self._touch()
        self.env.process(self._launch_proc(done))
        return done

    def _launch_proc(self, done: Event):
        hosting = self.hosting
        submit_time = self.env.now
        request = JobRequest(
            name=f"serve-{self.spec.name.split('/')[-1]}",
            num_nodes=hosting.nodes_per_instance,
            gpus_per_node=self.endpoint.scheduler.cluster.nodes[0].spec.gpus_per_node,
            walltime_s=hosting.walltime_s,
            metadata={"model": self.spec.name, "endpoint": self.endpoint.endpoint_id},
        )
        handle = self.endpoint.scheduler.submit(request)
        try:
            nodes = yield handle.started
        except RuntimeError as exc:
            self.launching -= 1
            self.queued_job_launches -= 1
            self._touch()
            self._log.warning("instance launch failed: scheduler job never started",
                              model=self.spec.name, error=str(exc))
            if not done.triggered:
                done.fail(exc)
                done.defuse()
            return
        self.queued_job_launches -= 1
        instance = self.endpoint.create_instance(self.spec, hosting, nodes)
        self.jobs[instance.instance_id] = handle
        self.instances.append(instance)
        self._touch()
        try:
            yield instance.ready
        except RuntimeError as exc:
            self.launching -= 1
            self.instances.remove(instance)
            self.endpoint.scheduler.release(handle.job.job_id)
            self._touch()
            self._log.warning("instance launch failed: server never became ready",
                              model=self.spec.name,
                              instance=instance.instance_id, error=str(exc))
            if not done.triggered:
                done.fail(exc)
                done.defuse()
            return
        self.launching -= 1
        # Feed the control plane's cold-start estimate (submit → ready), the
        # horizon the predictive policy pre-warms ahead by.
        self._cold_start_observed = self.env.now - submit_time
        self.slots[instance.instance_id] = Resource(
            self.env, capacity=hosting.max_parallel_tasks
        )
        self._signal_ready()
        self._touch()
        self.env.process(self._watch_job(instance, handle))
        if not done.triggered:
            done.succeed(instance)

    def _watch_job(self, instance, handle):
        """Mark the instance failed if its scheduler job ends underneath it
        (walltime expiry, node failure); the health monitor then relaunches."""
        yield handle.finished
        if instance.state == InstanceState.RUNNING:
            instance.fail("scheduler job ended (walltime or node failure)")
            self._touch()

    def _signal_ready(self) -> None:
        if not self._ready_signal.triggered:
            self._ready_signal.succeed()
        self._ready_signal = self.env.event()

    # -- task slot acquisition -----------------------------------------------------
    def acquire(self):
        """Simulation process: wait for a ready instance slot.

        Returns ``(instance, slot_request)``; the caller must call
        :meth:`release` when done.
        """
        self.waiting_tasks += 1
        self.arrivals_total += 1
        self._touch()
        try:
            self.ensure_capacity()
            while True:
                ready = self.ready_instances
                if ready:
                    # Least-loaded ready instance.  Load is measured from the
                    # slot resource (held + queued), which updates synchronously
                    # at request time, so a burst of arrivals spreads across
                    # instances instead of piling onto the first one.
                    instance = min(ready, key=self._instance_load)
                    slot = self.slots[instance.instance_id]
                    request = slot.request()
                    yield request
                    if instance.is_ready:
                        return instance, request
                    # Instance died while we waited for the slot; retry.
                    slot.release(request)
                else:
                    signal = self._ready_signal
                    yield signal
        finally:
            self.waiting_tasks -= 1
            self._touch()

    def release(self, instance, slot_request) -> None:
        self.completions_total += 1
        slot = self.slots.get(instance.instance_id)
        if slot is not None:
            slot.release(slot_request)
        self._touch()

    # -- monitors ----------------------------------------------------------------------
    def _monitor(self):
        """Hot-idle release and fault-tolerance restart loop."""
        interval = self.endpoint.config.monitor_interval_s
        while True:
            yield self.env.timeout(interval)
            self._reap_idle()
            self._restart_failed()
            # Re-evaluate auto-scaling for tasks that queued up after their
            # initial admission check (sustained saturation).
            if self.waiting_tasks > 0:
                self.ensure_capacity()

    def _reap_idle(self) -> None:
        for instance in list(self.ready_instances):
            if (
                instance.in_flight == 0
                and instance.idle_for_s >= self.hosting.hot_idle_timeout_s
            ):
                self._retire(instance)

    def _restart_failed(self) -> None:
        for instance in list(self.instances):
            if instance.state == InstanceState.FAILED:
                was_draining = instance.instance_id in self.draining
                self.draining.discard(instance.instance_id)
                self._retire(instance, failed=True)
                if was_draining:
                    # The autoscaler was retiring it anyway; don't relaunch.
                    continue
                self.restarts += 1
                self._log.warning("restarting failed instance",
                                  model=self.spec.name,
                                  instance=instance.instance_id,
                                  restarts=self.restarts)
                # Process-management scripts restart failed servers (§3.2.2).
                self._launch()

    def _retire(self, instance, failed: bool = False, drained: bool = False) -> None:
        if instance in self.instances:
            self.instances.remove(instance)
        self.slots.pop(instance.instance_id, None)
        handle = self.jobs.pop(instance.instance_id, None)
        if not failed:
            instance.stop()
        if handle is not None and not handle.job.state.terminal:
            if drained:
                self.endpoint.scheduler.release_drained(handle.job.job_id)
            else:
                self.endpoint.scheduler.release(handle.job.job_id)
        self._touch()

    def shutdown(self) -> None:
        self.draining.clear()
        for instance in list(self.instances):
            self._retire(instance)


class ComputeEndpoint:
    """A Globus-Compute-like endpoint bound to one cluster/scheduler."""

    def __init__(
        self,
        env: Environment,
        scheduler: SchedulerBase,
        catalog: ModelCatalog,
        config: EndpointConfig,
        perf_config: Optional[PerfModelConfig] = None,
        engine_config: Optional[EngineConfig] = None,
        api_config: Optional[APIServerConfig] = None,
        ids: Optional[IdGenerator] = None,
    ):
        if scheduler.cluster.name != config.cluster:
            raise ConfigurationError(
                f"Endpoint {config.endpoint_id} is configured for cluster "
                f"{config.cluster!r} but was given a scheduler for "
                f"{scheduler.cluster.name!r}"
            )
        self.env = env
        self.scheduler = scheduler
        self.catalog = catalog
        self.config = config
        self.perf_config = perf_config or PerfModelConfig()
        self.engine_config = engine_config or EngineConfig(generate_text=False)
        self.api_config = api_config or APIServerConfig()
        self._ids = ids or IdGenerator()
        #: Control plane driving every pool with an ``AutoscaleConfig``;
        #: legacy pools stay demand-driven and never register with it.
        self.autoscaler = AutoscaleController(env)
        self.pools: Dict[str, _ModelPool] = {
            hosting.model: _ModelPool(self, hosting) for hosting in config.models
        }
        self._log = sim_logger("repro.faas.endpoint", env)
        # counters
        self.tasks_executed = 0
        self.tasks_failed = 0
        self.tasks_rejected = 0

    # -- identity ---------------------------------------------------------------------
    @property
    def endpoint_id(self) -> str:
        return self.config.endpoint_id

    @property
    def cluster_name(self) -> str:
        return self.config.cluster

    def ready_instance_count(self) -> int:
        return sum(len(p.ready_instances) for p in self.pools.values())

    def kernel_backlog(self, model: Optional[str] = None) -> int:
        """Tasks waiting for or holding an instance slot on this endpoint.

        The relay's queue-depth-aware dispatch uses this as its load signal
        when a submission names several candidate endpoints: ``waiting_tasks``
        counts arrivals still queueing for a slot, ``in_flight_tasks`` the
        slots currently held (work admitted to an instance, including
        requests queued inside its engine).  With ``model`` the measure is
        restricted to that model's pool."""
        if model is not None:
            pool = self._pool(model)
            return pool.waiting_tasks + pool.in_flight_tasks
        return sum(
            p.waiting_tasks + p.in_flight_tasks for p in self.pools.values()
        )

    # -- instance creation (used by pools) -----------------------------------------------
    def create_instance(self, spec, hosting: ModelHostingConfig, nodes):
        instance_id = self._ids.next(f"{self.endpoint_id}-{spec.name.split('/')[-1]}")
        if spec.is_embedding or hosting.backend == "infinity":
            return EmbeddingServingInstance(
                self.env,
                spec,
                nodes,
                tensor_parallel=hosting.tensor_parallel,
                backend=hosting.backend,
                instance_id=instance_id,
                cluster=self.cluster_name,
            )
        return ServingInstance(
            self.env,
            spec,
            nodes,
            tensor_parallel=hosting.tensor_parallel,
            backend=hosting.backend,
            perf_config=self.perf_config,
            engine_config=self.engine_config,
            api_config=self.api_config,
            instance_id=instance_id,
            cluster=self.cluster_name,
        )

    # -- warm-up and status ---------------------------------------------------------------
    def prewarm(self, model: str, instances: int = 1) -> List[Event]:
        """Launch ``instances`` instances of ``model`` ahead of demand."""
        return self._pool(model).prewarm(instances)

    def attach_gateway_metrics(self, metrics) -> None:
        """Wire the gateway's metrics layer into every pool's control loop
        (gateway-observed TTFT/ITL/latency medians reach the policies)."""
        for pool in self.pools.values():
            pool.feed.gateway_metrics = metrics

    def model_status(self, model: Optional[str] = None) -> List[ModelPoolStatus]:
        """Status of hosted models (backs the gateway's ``/jobs`` endpoint)."""
        pools = [self._pool(model)] if model else list(self.pools.values())
        return [p.status() for p in pools]

    def hosts_model(self, model: str) -> bool:
        return self.config.hosts(model)

    def _pool(self, model: str) -> _ModelPool:
        if model in self.pools:
            return self.pools[model]
        # Allow alias lookup through the catalog.
        try:
            spec = self.catalog.get(model)
        except KeyError:
            raise NotFoundError(
                f"Model {model} is not hosted on endpoint {self.endpoint_id}"
            ) from None
        for pool in self.pools.values():
            if pool.spec.name == spec.name:
                return pool
        raise NotFoundError(
            f"Model {model} is not hosted on endpoint {self.endpoint_id}"
        )

    # -- task execution --------------------------------------------------------------------
    def enqueue(self, record: TaskRecord, function: RegisteredFunction) -> Event:
        """Accept a dispatched task; returns an event with the execution outcome."""
        outcome = self.env.event()
        self.env.process(self._execute(record, function, outcome))
        return outcome

    @staticmethod
    def _trace_of(record: TaskRecord):
        """TraceContext riding the task's request metadata, if tracing is on."""
        metadata = getattr(record.payload.get("request"), "metadata", None)
        return metadata.get(TRACE_KEY) if metadata else None

    def _execute(self, record: TaskRecord, function: RegisteredFunction, outcome: Event):
        from .task import TaskStatus

        cfg = self.config
        trace = self._trace_of(record)
        # `current` is still the gateway's suspended dispatch span while the
        # task executes; anchor the endpoint subtree under it.
        anchor = trace.current if trace is not None else None
        span = None
        if trace is not None:
            span = trace.start_span("endpoint.execute", parent=anchor,
                                    layer="endpoint",
                                    attrs={"endpoint": self.endpoint_id,
                                           "task_id": record.task_id,
                                           "handler": function.handler})
        # Task pickup on the endpoint's polling loop.
        if cfg.poll_interval_s > 0:
            yield self.env.timeout(cfg.poll_interval_s)

        if cfg.required_client_id is not None and record.payload.get("client_id") not in (
            cfg.required_client_id,
        ):
            self.tasks_rejected += 1
            self._log.warning("task rejected: untrusted client",
                              task_id=record.task_id, endpoint=self.endpoint_id)
            if span is not None:
                span.status = "error:rejected"
                trace.end_span(span)
            outcome.succeed({"success": False,
                             "error": "task not submitted by the trusted confidential client"})
            return

        record.status = TaskStatus.RUNNING
        record.start_time = self.env.now
        try:
            if function.handler == HANDLER_CHAT:
                result = yield from self._run_chat(record, trace=trace, span=span)
            elif function.handler == HANDLER_EMBEDDING:
                result = yield from self._run_embedding(record, trace=trace, span=span)
            elif function.handler == HANDLER_BATCH:
                result = yield from self._run_batch(record)
            else:
                raise ConfigurationError(f"Unknown handler {function.handler!r}")
        except Exception as exc:  # noqa: BLE001 - report execution failures upstream
            self.tasks_failed += 1
            self._log.warning("task execution failed", task_id=record.task_id,
                              endpoint=self.endpoint_id,
                              error=f"{type(exc).__name__}: {exc}")
            if span is not None:
                span.status = f"error:{type(exc).__name__}"
                trace.end_span(span)
            outcome.succeed({"success": False, "error": f"{type(exc).__name__}: {exc}"})
            return
        self.tasks_executed += 1
        if span is not None:
            trace.end_span(span)
        outcome.succeed({"success": True, "result": result})

    def _request_from_payload(self, record: TaskRecord) -> InferenceRequest:
        request = record.payload.get("request")
        if not isinstance(request, InferenceRequest):
            raise ConfigurationError("Task payload does not contain an InferenceRequest")
        return request

    def _run_chat(self, record: TaskRecord, trace=None, span=None):
        request = self._request_from_payload(record)
        channel = record.payload.get(STREAM_CHANNEL_KEY)
        if channel is not None and request.stream:
            request.metadata[STREAM_CHANNEL_KEY] = channel
        pool = self._pool(request.model)
        wait_span = None
        if trace is not None:
            wait_span = trace.start_span("endpoint.queue_wait", parent=span,
                                         layer="endpoint",
                                         attrs={"model": request.model})
        instance, slot = yield from pool.acquire()
        if wait_span is not None:
            wait_span.attrs["instance"] = instance.instance_id
            trace.end_span(wait_span)
        try:
            result = yield instance.submit(request)
        finally:
            pool.release(instance, slot)
        return result

    def _run_embedding(self, record: TaskRecord, trace=None, span=None):
        # Embedding requests follow the same pool mechanics.
        return (yield from self._run_chat(record, trace=trace, span=span))

    def _run_batch(self, record: TaskRecord):
        """Run a batch job: a dedicated scheduler job + offline engine (§4.4)."""
        payload = record.payload
        requests = payload.get("requests", [])
        model_name = payload.get("model")
        if not requests or model_name is None:
            raise ConfigurationError("Batch payload requires 'model' and 'requests'")
        spec = self.catalog.get(model_name)
        hosting = self._pool(model_name).hosting

        job_request = JobRequest(
            name=f"batch-{spec.name.split('/')[-1]}",
            num_nodes=hosting.nodes_per_instance,
            gpus_per_node=self.scheduler.cluster.nodes[0].spec.gpus_per_node,
            walltime_s=hosting.walltime_s,
            metadata={"model": spec.name, "kind": "batch"},
        )
        handle = self.scheduler.submit(job_request)
        nodes = yield handle.started
        try:
            tp = hosting.tensor_parallel or spec.default_tp
            perf = PerformanceModel(
                model=spec,
                num_gpus=tp,
                gpu_spec=nodes[0].spec.gpu_spec,
                config=self.perf_config,
                node_spec=nodes[0].spec,
                num_nodes=len(nodes),
            )
            runner = OfflineBatchRunner(self.env, perf)
            run_result = yield from runner.run(list(requests))
        finally:
            self.scheduler.release(handle.job.job_id)
        return run_result

    def shutdown(self) -> None:
        self.autoscaler.stop()
        for pool in self.pools.values():
            pool.shutdown()
