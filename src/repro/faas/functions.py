"""Function registry for the Globus-Compute-like layer.

"Only functions that are pre-registered by the administrators are permitted
to be executed on an endpoint, preventing execution of malicious code"
(§3.2.2).  A registered function is identified by a function id; each
endpoint declares which handler implements it (e.g. interactive inference,
embedding, offline batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common import AuthorizationError, NotFoundError

__all__ = [
    "HANDLER_CHAT",
    "HANDLER_EMBEDDING",
    "HANDLER_BATCH",
    "RegisteredFunction",
    "FunctionRegistry",
]

#: Built-in handler names understood by compute endpoints.
HANDLER_CHAT = "inference.chat"
HANDLER_EMBEDDING = "inference.embedding"
HANDLER_BATCH = "inference.batch"


@dataclass(frozen=True)
class RegisteredFunction:
    """A function registered with the FaaS service by an administrator."""

    function_id: str
    name: str
    handler: str
    owner: str
    description: str = ""


class FunctionRegistry:
    """Cloud-side registry of admin-registered functions."""

    def __init__(self):
        self._functions: Dict[str, RegisteredFunction] = {}

    def register(
        self,
        function_id: str,
        name: str,
        handler: str,
        owner: str,
        description: str = "",
    ) -> RegisteredFunction:
        if function_id in self._functions:
            raise ValueError(f"Function {function_id} already registered")
        fn = RegisteredFunction(function_id, name, handler, owner, description)
        self._functions[function_id] = fn
        return fn

    def get(self, function_id: str) -> RegisteredFunction:
        try:
            return self._functions[function_id]
        except KeyError:
            raise NotFoundError(f"Unknown function id: {function_id}") from None

    def is_registered(self, function_id: str) -> bool:
        return function_id in self._functions

    def require_registered(self, function_id: str) -> RegisteredFunction:
        """Raise :class:`AuthorizationError` if the function is not pre-registered."""
        if not self.is_registered(function_id):
            raise AuthorizationError(
                f"Function {function_id} is not pre-registered by an administrator"
            )
        return self._functions[function_id]

    @property
    def function_ids(self) -> List[str]:
        return sorted(self._functions)
