"""The cloud-hosted FaaS relay (the Globus Compute web service).

The relay is the communication layer between the Inference Gateway and the
HPC endpoints (§3.2): it validates that the invoked function is
pre-registered, that the caller is an authorised confidential client,
dispatches the task to the requested endpoint, and relays the result back.

Two timing behaviours matter for the paper's evaluation:

* fixed per-hop network latencies (submit, dispatch, result) — these add the
  constant overhead visible at low request rates in Fig. 3;
* a *routing scalability* limit on the result-forwarding path — the paper
  attributes the sub-linear auto-scaling in Fig. 4 to "the ability of Globus
  Compute to scale and route requests to the multiple instances".  The relay
  therefore serialises result forwarding through a channel whose service
  rate follows ``R(N) = R_max * N / (N + N_half)`` where ``N`` is the number
  of active model instances; the constants are fitted to Fig. 4 (see
  ``repro.core.calibration``).

A submission may name a *list* of candidate endpoints instead of one; the
relay then dispatches queue-depth-aware: endpoints with ready instances are
preferred, ties broken by the shortest kernel-queue backlog
(:meth:`~repro.faas.endpoint.ComputeEndpoint.kernel_backlog`), and finally
by candidate order, keeping selection deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..common import AuthorizationError, IdGenerator, NotFoundError, sim_logger
from ..obs.trace import TRACE_KEY
from ..sim import Environment, Resource
from .functions import FunctionRegistry
from .task import TaskFuture, TaskRecord, TaskStatus

__all__ = ["RelayConfig", "RelayStats", "RelayService"]


@dataclass
class RelayConfig:
    """Timing and capacity parameters of the cloud relay."""

    #: Client SDK → cloud service (accept + persist) latency.
    submit_latency_s: float = 0.6
    #: Cloud service → endpoint dispatch latency (includes the endpoint's
    #: task-queue pickup).
    dispatch_latency_s: float = 1.2
    #: Endpoint → cloud → client result delivery latency.
    result_latency_s: float = 1.0
    #: Routing-scalability ceiling (tasks/s) as the instance count grows.
    routing_rate_max: float = 66.0
    #: Instance count at which the routing rate reaches half its ceiling.
    routing_half_instances: float = 7.0
    #: Maximum tasks the cloud service will hold (the paper observed >8000
    #: tasks queued without issue).
    max_queued_tasks: int = 200000


@dataclass
class RelayStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    peak_queued: int = 0


class RelayService:
    """Cloud relay connecting clients (the gateway) to compute endpoints."""

    def __init__(
        self,
        env: Environment,
        config: Optional[RelayConfig] = None,
        ids: Optional[IdGenerator] = None,
        authorized_client_ids: Optional[List[str]] = None,
    ):
        self.env = env
        self.config = config or RelayConfig()
        self.functions = FunctionRegistry()
        self.stats = RelayStats()
        self._ids = ids or IdGenerator()
        self._endpoints: Dict[str, Any] = {}
        self._tasks: Dict[str, TaskRecord] = {}
        self._futures: Dict[str, TaskFuture] = {}
        self._result_channel = Resource(env, capacity=1)
        #: Tasks routed to an endpoint but not yet handed to it (still inside
        #: the submit/dispatch latencies).  The endpoint cannot see these, so
        #: the queue-depth dispatcher adds them to its reported backlog —
        #: otherwise a same-instant burst would all pick the same endpoint.
        self._open_dispatches: Dict[str, int] = {}
        #: Confidential client ids allowed to submit (None = open, used in tests).
        self.authorized_client_ids = set(authorized_client_ids or [])
        self._log = sim_logger("repro.faas.relay", env)

    # -- registration -----------------------------------------------------------
    def register_endpoint(self, endpoint) -> None:
        """Attach a :class:`~repro.faas.endpoint.ComputeEndpoint` to the relay."""
        if endpoint.endpoint_id in self._endpoints:
            raise ValueError(f"Endpoint {endpoint.endpoint_id} already registered")
        self._endpoints[endpoint.endpoint_id] = endpoint

    def get_endpoint(self, endpoint_id: str):
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise NotFoundError(f"Unknown endpoint id: {endpoint_id}") from None

    @property
    def endpoint_ids(self) -> List[str]:
        return sorted(self._endpoints)

    def authorize_client(self, client_id: str) -> None:
        self.authorized_client_ids.add(client_id)

    # -- routing scalability ---------------------------------------------------------
    def active_instance_count(self) -> int:
        """Number of ready model instances across all registered endpoints."""
        return sum(ep.ready_instance_count() for ep in self._endpoints.values())

    def result_service_time_s(self) -> float:
        """Per-result forwarding time on the shared routing channel."""
        n = max(1, self.active_instance_count())
        cfg = self.config
        rate = cfg.routing_rate_max * n / (n + cfg.routing_half_instances)
        return 1.0 / rate

    # -- task submission --------------------------------------------------------------
    @property
    def queued_tasks(self) -> int:
        """Tasks accepted by the cloud service that have not yet completed."""
        return sum(1 for t in self._tasks.values() if not t.status.terminal)

    def select_endpoint(
        self,
        endpoint_id: Union[str, Sequence[str]],
        model: Optional[str] = None,
    ):
        """Resolve a submission target to one endpoint.

        A single id resolves directly.  A sequence of candidate ids is
        dispatched queue-depth-aware with a deterministic key: endpoints
        with at least one ready instance first, then the shortest kernel
        backlog (for ``model`` when given), then candidate order.
        """
        if isinstance(endpoint_id, str):
            return self.get_endpoint(endpoint_id)
        candidates = [self.get_endpoint(eid) for eid in endpoint_id]
        if not candidates:
            raise NotFoundError("Submission named no candidate endpoints")
        if len(candidates) == 1:
            return candidates[0]

        def dispatch_key(index: int):
            endpoint = candidates[index]
            backlog = endpoint.kernel_backlog(model)
            backlog += self._open_dispatches.get(endpoint.endpoint_id, 0)
            return (
                0 if endpoint.ready_instance_count() > 0 else 1,
                backlog,
                index,
            )

        return candidates[min(range(len(candidates)), key=dispatch_key)]

    @staticmethod
    def _payload_model(payload: Dict[str, Any]) -> Optional[str]:
        """Model name a task is for, when the payload reveals one."""
        request = payload.get("request")
        model = getattr(request, "model", None)
        return model if model is not None else payload.get("model")

    @staticmethod
    def _payload_trace(payload: Dict[str, Any]):
        """TraceContext riding the payload's request, when tracing is on."""
        metadata = getattr(payload.get("request"), "metadata", None)
        return metadata.get(TRACE_KEY) if metadata else None

    def submit(
        self,
        function_id: str,
        endpoint_id: Union[str, Sequence[str]],
        payload: Dict[str, Any],
        submitter: str = "",
        client_id: Optional[str] = None,
    ) -> TaskFuture:
        """Submit a task; returns a :class:`TaskFuture` immediately.

        ``endpoint_id`` may be one endpoint id or a sequence of candidates;
        see :meth:`select_endpoint` for how a candidate list is dispatched.
        """
        if self.authorized_client_ids and client_id not in self.authorized_client_ids:
            self.stats.rejected += 1
            self._log.warning("relay rejected submission: unauthorised client",
                              client_id=client_id, submitter=submitter)
            raise AuthorizationError(
                "Caller is not an authorised confidential client of the relay"
            )
        function = self.functions.require_registered(function_id)
        endpoint = self.select_endpoint(endpoint_id, model=self._payload_model(payload))
        if self.queued_tasks >= self.config.max_queued_tasks:
            self.stats.rejected += 1
            self._log.warning("relay rejected submission: task queue full",
                              queued=self.queued_tasks,
                              limit=self.config.max_queued_tasks)
            raise RuntimeError("Relay task queue is full")

        record = TaskRecord(
            task_id=self._ids.next("task"),
            function_id=function_id,
            endpoint_id=endpoint.endpoint_id,
            payload=payload,
            submitter=submitter,
            submit_time=self.env.now,
        )
        future = TaskFuture(self.env, record)
        self._tasks[record.task_id] = record
        self._futures[record.task_id] = future
        self.stats.submitted += 1
        self.stats.peak_queued = max(self.stats.peak_queued, self.queued_tasks)
        eid = endpoint.endpoint_id
        self._open_dispatches[eid] = self._open_dispatches.get(eid, 0) + 1
        # Anchor the relay's spans under the caller's active span (the
        # gateway's dispatch stage) — captured here, synchronously, while
        # the caller is still the running process.
        trace = self._payload_trace(payload)
        anchor = trace.current if trace is not None else None
        self.env.process(self._process_task(record, future, function, endpoint,
                                            trace=trace, anchor=anchor))
        return future

    def _process_task(self, record: TaskRecord, future: TaskFuture, function,
                      endpoint, trace=None, anchor=None):
        cfg = self.config
        span = None
        if trace is not None:
            span = trace.start_span("relay.transfer", parent=anchor,
                                    layer="relay",
                                    attrs={"task_id": record.task_id,
                                           "endpoint": record.endpoint_id})
        yield self.env.timeout(cfg.submit_latency_s)
        yield self.env.timeout(cfg.dispatch_latency_s)
        record.status = TaskStatus.DISPATCHED
        record.dispatch_time = self.env.now

        outcome_event = endpoint.enqueue(record, function)
        if span is not None:
            trace.end_span(span)
        # From here the endpoint's own backlog accounting covers the task.
        open_count = self._open_dispatches.get(record.endpoint_id, 0)
        if open_count <= 1:
            self._open_dispatches.pop(record.endpoint_id, None)
        else:
            self._open_dispatches[record.endpoint_id] = open_count - 1
        outcome = yield outcome_event

        # Result forwarding through the shared routing channel.
        result_span = None
        if trace is not None:
            result_span = trace.start_span("relay.result", parent=anchor,
                                           layer="relay",
                                           attrs={"task_id": record.task_id})
        with self._result_channel.request() as req:
            yield req
            yield self.env.timeout(self.result_service_time_s())
        yield self.env.timeout(cfg.result_latency_s)

        record.completion_time = self.env.now
        if outcome.get("success", False):
            record.status = TaskStatus.COMPLETED
            record.result = outcome.get("result")
            self.stats.completed += 1
            if result_span is not None:
                result_span.attrs["success"] = True
                trace.end_span(result_span)
            future.resolve(record.result)
        else:
            record.status = TaskStatus.FAILED
            record.error = outcome.get("error", "unknown error")
            self.stats.failed += 1
            self._log.warning("task failed at endpoint",
                              task_id=record.task_id,
                              endpoint=record.endpoint_id, error=record.error)
            if result_span is not None:
                result_span.attrs["success"] = False
                result_span.status = "error"
                trace.end_span(result_span)
            future.reject(record.error)

    # -- status / results (the polling path of Optimization 1) -------------------------
    def get_task(self, task_id: str) -> TaskRecord:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"Unknown task id: {task_id}") from None

    def get_status(self, task_id: str) -> TaskStatus:
        return self.get_task(task_id).status

    def get_result(self, task_id: str) -> Any:
        record = self.get_task(task_id)
        if not record.status.terminal:
            raise RuntimeError(f"Task {task_id} has not completed yet")
        if record.status != TaskStatus.COMPLETED:
            raise RuntimeError(f"Task {task_id} failed: {record.error}")
        return record.result

    def get_future(self, task_id: str) -> TaskFuture:
        try:
            return self._futures[task_id]
        except KeyError:
            raise NotFoundError(f"Unknown task id: {task_id}") from None
