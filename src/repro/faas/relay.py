"""The cloud-hosted FaaS relay (the Globus Compute web service).

The relay is the communication layer between the Inference Gateway and the
HPC endpoints (§3.2): it validates that the invoked function is
pre-registered, that the caller is an authorised confidential client,
dispatches the task to the requested endpoint, and relays the result back.

Two timing behaviours matter for the paper's evaluation:

* fixed per-hop network latencies (submit, dispatch, result) — these add the
  constant overhead visible at low request rates in Fig. 3;
* a *routing scalability* limit on the result-forwarding path — the paper
  attributes the sub-linear auto-scaling in Fig. 4 to "the ability of Globus
  Compute to scale and route requests to the multiple instances".  The relay
  therefore serialises result forwarding through a channel whose service
  rate follows ``R(N) = R_max * N / (N + N_half)`` where ``N`` is the number
  of active model instances; the constants are fitted to Fig. 4 (see
  ``repro.core.calibration``).

A submission may name a *list* of candidate endpoints instead of one; the
relay then dispatches queue-depth-aware: endpoints with ready instances are
preferred, ties broken by the shortest kernel-queue backlog
(:meth:`~repro.faas.endpoint.ComputeEndpoint.kernel_backlog`), and finally
by candidate order, keeping selection deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..common import AuthorizationError, IdGenerator, NotFoundError, sim_logger
from ..obs.trace import TRACE_KEY
from ..sim import Environment, Resource
from .functions import FunctionRegistry
from .task import TaskFuture, TaskRecord, TaskStatus

__all__ = ["RelayConfig", "RelayStats", "RelayService", "RelayBoundaryProxy"]


@dataclass
class RelayConfig:
    """Timing and capacity parameters of the cloud relay."""

    #: Client SDK → cloud service (accept + persist) latency.
    submit_latency_s: float = 0.6
    #: Cloud service → endpoint dispatch latency (includes the endpoint's
    #: task-queue pickup).
    dispatch_latency_s: float = 1.2
    #: Endpoint → cloud → client result delivery latency.
    result_latency_s: float = 1.0
    #: Routing-scalability ceiling (tasks/s) as the instance count grows.
    routing_rate_max: float = 66.0
    #: Instance count at which the routing rate reaches half its ceiling.
    routing_half_instances: float = 7.0
    #: Maximum tasks the cloud service will hold (the paper observed >8000
    #: tasks queued without issue).
    max_queued_tasks: int = 200000


@dataclass
class RelayStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    peak_queued: int = 0


class RelayBoundaryProxy:
    """Stand-in for a :class:`~repro.faas.endpoint.ComputeEndpoint` whose
    cluster runs in another partition (see :mod:`repro.parallel`).

    The proxy registers with the relay like a real endpoint and answers the
    queue-depth dispatcher's load questions from the cluster's last barrier
    snapshot (a :class:`~repro.placement.PoolSignal` held by the shared
    :class:`~repro.placement.TopologyView`), topped up with the boundary
    dispatches the snapshot cannot have seen yet.  Tasks routed to it do not
    execute here: they are appended to an outbox with a deterministic
    arrival stamp (``submit_time + submit latency + dispatch latency`` — the
    partition scheme's conservative lookahead) and shipped across the
    barrier; :meth:`complete` resolves the held outcome event when the
    result message returns.

    Snapshot staleness is window-granular by construction, and identically
    so in the serial ``workers=1`` fallback, which is what keeps routing
    decisions bit-identical across worker counts.
    """

    is_boundary_proxy = True

    def __init__(self, env: Environment, endpoint_id: str, cluster: str,
                 models: Sequence[str], view=None):
        self.env = env
        self.endpoint_id = endpoint_id
        self.cluster_name = cluster
        self.models = list(models)
        #: The gateway partition's :class:`~repro.placement.TopologyView`;
        #: remote snapshots land there (``apply_partition_snapshot``) and the
        #: proxy reads them back, keeping the view in the routing loop.
        self.view = view
        #: ``task_id -> (outcome event, dispatch arrival time)`` for tasks
        #: shipped across the boundary and not yet completed.
        self._open: Dict[str, tuple] = {}
        #: Outbox drained by the owning partition at each window barrier.
        self.outbox: List[dict] = []
        self._seq = 0

    # -- endpoint interface the relay dispatcher reads ----------------------
    def _signals(self):
        if self.view is None:
            return []
        signals = []
        for model in self.models:
            signal = self.view.pool_signal(self.endpoint_id, model)
            if signal is not None:
                signals.append(signal)
        return signals

    def ready_instance_count(self) -> int:
        return sum(s.ready_instances for s in self._signals())

    def _unseen_dispatches(self, as_of: float) -> int:
        """Boundary tasks the cluster's snapshot cannot include yet."""
        return sum(1 for _evt, arrival in self._open.values() if arrival > as_of)

    def kernel_backlog(self, model: Optional[str] = None) -> int:
        backlog = 0
        as_of = -1.0
        for signal in self._signals():
            if model is not None and signal.model != model:
                continue
            backlog += signal.waiting_tasks + signal.in_flight_tasks
            as_of = max(as_of, signal.computed_at)
        return backlog + self._unseen_dispatches(as_of)

    def hosts_model(self, model: str) -> bool:
        return model in self.models

    # -- boundary mechanics --------------------------------------------------
    def enqueue_boundary(self, record: TaskRecord, function,
                         arrival_time: float):
        """Ship ``record`` across the partition boundary; returns the outcome
        event resolved by :meth:`complete` when the result message returns."""
        outcome = self.env.event()
        self._open[record.task_id] = (outcome, arrival_time)
        self.outbox.append({
            "task_id": record.task_id,
            "function_id": record.function_id,
            "endpoint_id": self.endpoint_id,
            "arrival_time": arrival_time,
            "submit_time": record.submit_time,
            "submitter": record.submitter,
            "seq": self._seq,
            "payload": record.payload,
        })
        self._seq += 1
        return outcome

    def drain_outbox(self) -> List[dict]:
        out, self.outbox = self.outbox, []
        return out

    def complete(self, task_id: str, outcome: Dict[str, Any]) -> None:
        """Resolve a boundary task with the outcome carried by a result
        message (called by the owning partition at the stamped arrival)."""
        event, _arrival = self._open.pop(task_id)
        event.succeed(outcome)

    @property
    def open_tasks(self) -> int:
        return len(self._open)


class RelayService:
    """Cloud relay connecting clients (the gateway) to compute endpoints."""

    def __init__(
        self,
        env: Environment,
        config: Optional[RelayConfig] = None,
        ids: Optional[IdGenerator] = None,
        authorized_client_ids: Optional[List[str]] = None,
    ):
        self.env = env
        self.config = config or RelayConfig()
        self.functions = FunctionRegistry()
        self.stats = RelayStats()
        self._ids = ids or IdGenerator()
        self._endpoints: Dict[str, Any] = {}
        self._tasks: Dict[str, TaskRecord] = {}
        self._futures: Dict[str, TaskFuture] = {}
        self._result_channel = Resource(env, capacity=1)
        #: Tasks routed to an endpoint but not yet handed to it (still inside
        #: the submit/dispatch latencies).  The endpoint cannot see these, so
        #: the queue-depth dispatcher adds them to its reported backlog —
        #: otherwise a same-instant burst would all pick the same endpoint.
        self._open_dispatches: Dict[str, int] = {}
        #: Confidential client ids allowed to submit (None = open, used in tests).
        self.authorized_client_ids = set(authorized_client_ids or [])
        self._log = sim_logger("repro.faas.relay", env)

    # -- registration -----------------------------------------------------------
    def register_endpoint(self, endpoint) -> None:
        """Attach a :class:`~repro.faas.endpoint.ComputeEndpoint` to the relay."""
        if endpoint.endpoint_id in self._endpoints:
            raise ValueError(f"Endpoint {endpoint.endpoint_id} already registered")
        self._endpoints[endpoint.endpoint_id] = endpoint

    def get_endpoint(self, endpoint_id: str):
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise NotFoundError(f"Unknown endpoint id: {endpoint_id}") from None

    @property
    def endpoint_ids(self) -> List[str]:
        return sorted(self._endpoints)

    def authorize_client(self, client_id: str) -> None:
        self.authorized_client_ids.add(client_id)

    # -- routing scalability ---------------------------------------------------------
    def active_instance_count(self) -> int:
        """Number of ready model instances across all registered endpoints."""
        return sum(ep.ready_instance_count() for ep in self._endpoints.values())

    def result_service_time_s(self) -> float:
        """Per-result forwarding time on the shared routing channel."""
        n = max(1, self.active_instance_count())
        cfg = self.config
        rate = cfg.routing_rate_max * n / (n + cfg.routing_half_instances)
        return 1.0 / rate

    # -- task submission --------------------------------------------------------------
    @property
    def queued_tasks(self) -> int:
        """Tasks accepted by the cloud service that have not yet completed."""
        return sum(1 for t in self._tasks.values() if not t.status.terminal)

    def select_endpoint(
        self,
        endpoint_id: Union[str, Sequence[str]],
        model: Optional[str] = None,
    ):
        """Resolve a submission target to one endpoint.

        A single id resolves directly.  A sequence of candidate ids is
        dispatched queue-depth-aware with a deterministic key: endpoints
        with at least one ready instance first, then the shortest kernel
        backlog (for ``model`` when given), then candidate order.
        """
        if isinstance(endpoint_id, str):
            return self.get_endpoint(endpoint_id)
        candidates = [self.get_endpoint(eid) for eid in endpoint_id]
        if not candidates:
            raise NotFoundError("Submission named no candidate endpoints")
        if len(candidates) == 1:
            return candidates[0]

        def dispatch_key(index: int):
            endpoint = candidates[index]
            backlog = endpoint.kernel_backlog(model)
            backlog += self._open_dispatches.get(endpoint.endpoint_id, 0)
            return (
                0 if endpoint.ready_instance_count() > 0 else 1,
                backlog,
                index,
            )

        return candidates[min(range(len(candidates)), key=dispatch_key)]

    @staticmethod
    def _payload_model(payload: Dict[str, Any]) -> Optional[str]:
        """Model name a task is for, when the payload reveals one."""
        request = payload.get("request")
        model = getattr(request, "model", None)
        return model if model is not None else payload.get("model")

    @staticmethod
    def _payload_trace(payload: Dict[str, Any]):
        """TraceContext riding the payload's request, when tracing is on."""
        metadata = getattr(payload.get("request"), "metadata", None)
        return metadata.get(TRACE_KEY) if metadata else None

    def submit(
        self,
        function_id: str,
        endpoint_id: Union[str, Sequence[str]],
        payload: Dict[str, Any],
        submitter: str = "",
        client_id: Optional[str] = None,
    ) -> TaskFuture:
        """Submit a task; returns a :class:`TaskFuture` immediately.

        ``endpoint_id`` may be one endpoint id or a sequence of candidates;
        see :meth:`select_endpoint` for how a candidate list is dispatched.
        """
        if self.authorized_client_ids and client_id not in self.authorized_client_ids:
            self.stats.rejected += 1
            self._log.warning("relay rejected submission: unauthorised client",
                              client_id=client_id, submitter=submitter)
            raise AuthorizationError(
                "Caller is not an authorised confidential client of the relay"
            )
        function = self.functions.require_registered(function_id)
        endpoint = self.select_endpoint(endpoint_id, model=self._payload_model(payload))
        if self.queued_tasks >= self.config.max_queued_tasks:
            self.stats.rejected += 1
            self._log.warning("relay rejected submission: task queue full",
                              queued=self.queued_tasks,
                              limit=self.config.max_queued_tasks)
            raise RuntimeError("Relay task queue is full")

        record = TaskRecord(
            task_id=self._ids.next("task"),
            function_id=function_id,
            endpoint_id=endpoint.endpoint_id,
            payload=payload,
            submitter=submitter,
            submit_time=self.env.now,
        )
        future = TaskFuture(self.env, record)
        self._tasks[record.task_id] = record
        self._futures[record.task_id] = future
        self.stats.submitted += 1
        self.stats.peak_queued = max(self.stats.peak_queued, self.queued_tasks)
        eid = endpoint.endpoint_id
        self._open_dispatches[eid] = self._open_dispatches.get(eid, 0) + 1
        # Anchor the relay's spans under the caller's active span (the
        # gateway's dispatch stage) — captured here, synchronously, while
        # the caller is still the running process.
        trace = self._payload_trace(payload)
        anchor = trace.current if trace is not None else None
        self.env.process(self._process_task(record, future, function, endpoint,
                                            trace=trace, anchor=anchor))
        return future

    def _process_task(self, record: TaskRecord, future: TaskFuture, function,
                      endpoint, trace=None, anchor=None):
        if getattr(endpoint, "is_boundary_proxy", False):
            yield from self._process_boundary_task(record, future, function,
                                                   endpoint)
            return
        cfg = self.config
        span = None
        if trace is not None:
            span = trace.start_span("relay.transfer", parent=anchor,
                                    layer="relay",
                                    attrs={"task_id": record.task_id,
                                           "endpoint": record.endpoint_id})
        yield self.env.timeout(cfg.submit_latency_s)
        yield self.env.timeout(cfg.dispatch_latency_s)
        record.status = TaskStatus.DISPATCHED
        record.dispatch_time = self.env.now

        outcome_event = endpoint.enqueue(record, function)
        if span is not None:
            trace.end_span(span)
        # From here the endpoint's own backlog accounting covers the task.
        open_count = self._open_dispatches.get(record.endpoint_id, 0)
        if open_count <= 1:
            self._open_dispatches.pop(record.endpoint_id, None)
        else:
            self._open_dispatches[record.endpoint_id] = open_count - 1
        outcome = yield outcome_event

        # Result forwarding through the shared routing channel.
        result_span = None
        if trace is not None:
            result_span = trace.start_span("relay.result", parent=anchor,
                                           layer="relay",
                                           attrs={"task_id": record.task_id})
        with self._result_channel.request() as req:
            yield req
            yield self.env.timeout(self.result_service_time_s())
        yield self.env.timeout(cfg.result_latency_s)

        record.completion_time = self.env.now
        if outcome.get("success", False):
            record.status = TaskStatus.COMPLETED
            record.result = outcome.get("result")
            self.stats.completed += 1
            if result_span is not None:
                result_span.attrs["success"] = True
                trace.end_span(result_span)
            future.resolve(record.result)
        else:
            record.status = TaskStatus.FAILED
            record.error = outcome.get("error", "unknown error")
            self.stats.failed += 1
            self._log.warning("task failed at endpoint",
                              task_id=record.task_id,
                              endpoint=record.endpoint_id, error=record.error)
            if result_span is not None:
                result_span.attrs["success"] = False
                result_span.status = "error"
                trace.end_span(result_span)
            future.reject(record.error)

    def _process_boundary_task(self, record: TaskRecord, future: TaskFuture,
                               function, endpoint: RelayBoundaryProxy):
        """Relay path for tasks whose endpoint lives in another partition.

        The submit+dispatch wire time spends no simulated time here: it
        rides the boundary message's arrival stamp (that sum is exactly the
        gateway partition's conservative lookahead, so the stamp can never
        land inside the window that produced it).  The returning result
        likewise already paid ``result_latency_s`` as its message transfer;
        only the shared routing channel — the paper's R(N) scalability
        limit, which is cloud-side state — is still modeled here.
        """
        cfg = self.config
        arrival = record.submit_time + cfg.submit_latency_s + cfg.dispatch_latency_s
        record.status = TaskStatus.DISPATCHED
        record.dispatch_time = arrival
        outcome_event = endpoint.enqueue_boundary(record, function, arrival)
        # The proxy's open-task accounting covers the task from here on.
        open_count = self._open_dispatches.get(record.endpoint_id, 0)
        if open_count <= 1:
            self._open_dispatches.pop(record.endpoint_id, None)
        else:
            self._open_dispatches[record.endpoint_id] = open_count - 1
        outcome = yield outcome_event

        with self._result_channel.request() as req:
            yield req
            yield self.env.timeout(self.result_service_time_s())

        record.completion_time = self.env.now
        if outcome.get("success", False):
            record.status = TaskStatus.COMPLETED
            record.result = outcome.get("result")
            self.stats.completed += 1
            future.resolve(record.result)
        else:
            record.status = TaskStatus.FAILED
            record.error = outcome.get("error", "unknown error")
            self.stats.failed += 1
            self._log.warning("task failed at remote partition",
                              task_id=record.task_id,
                              endpoint=record.endpoint_id, error=record.error)
            future.reject(record.error)

    # -- status / results (the polling path of Optimization 1) -------------------------
    def get_task(self, task_id: str) -> TaskRecord:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"Unknown task id: {task_id}") from None

    def get_status(self, task_id: str) -> TaskStatus:
        return self.get_task(task_id).status

    def get_result(self, task_id: str) -> Any:
        record = self.get_task(task_id)
        if not record.status.terminal:
            raise RuntimeError(f"Task {task_id} has not completed yet")
        if record.status != TaskStatus.COMPLETED:
            raise RuntimeError(f"Task {task_id} failed: {record.error}")
        return record.result

    def get_future(self, task_id: str) -> TaskFuture:
        try:
            return self._futures[task_id]
        except KeyError:
            raise NotFoundError(f"Unknown task id: {task_id}") from None
