"""The Compute client SDK used by the Inference Gateway.

The gateway never talks to endpoints directly: it authenticates as an
admin-owned confidential client and submits function invocations through the
cloud relay (§3.2.3).  Two result-retrieval strategies are provided because
the paper's Optimization 1 replaced status polling with concurrent futures:

* :meth:`ComputeClient.wait_future` — event/future-based retrieval (results
  arrive as soon as the relay relays them);
* :meth:`ComputeClient.wait_polling` — the original design, which polls the
  relay for task status every ``poll_interval_s`` (2 s in the paper) and only
  then fetches the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..auth import GlobusAuthLikeService
from ..common import AuthenticationError
from ..serving import STREAM_CHANNEL_KEY
from ..sim import Environment
from .relay import RelayService
from .task import TaskFuture, TaskStatus

__all__ = ["ComputeClientConfig", "ComputeClient"]


@dataclass
class ComputeClientConfig:
    """Client-side behaviour."""

    #: Interval of the legacy polling loop (Optimization 1 removed it).
    poll_interval_s: float = 2.0
    #: Extra latency of a status-poll round trip to the relay.
    poll_latency_s: float = 0.15


class ComputeClient:
    """SDK wrapper around the relay, authenticated as a confidential client."""

    def __init__(
        self,
        env: Environment,
        relay: RelayService,
        client_id: str,
        client_secret: str,
        auth: Optional[GlobusAuthLikeService] = None,
        config: Optional[ComputeClientConfig] = None,
    ):
        self.env = env
        self.relay = relay
        self.client_id = client_id
        self.config = config or ComputeClientConfig()
        self.submitted = 0
        if auth is not None:
            # Validate the confidential client credentials once at start-up.
            auth.authenticate_client(client_id, client_secret)
        elif client_secret is None:
            raise AuthenticationError("Confidential client secret is required")

    # -- submission ------------------------------------------------------------
    def submit(
        self,
        function_id: str,
        endpoint_id: str,
        payload: Dict[str, Any],
        submitter: str = "",
        stream_channel: Optional[Any] = None,
    ) -> TaskFuture:
        """Submit a function invocation; returns a :class:`TaskFuture`.

        ``stream_channel`` (a :class:`~repro.serving.StreamChannel`) rides in
        the task payload down to the endpoint so the serving engine can
        publish per-token events back to the submitter while the final
        result still travels the normal future/polling path.
        """
        payload = dict(payload)
        payload.setdefault("client_id", self.client_id)
        if stream_channel is not None:
            payload[STREAM_CHANNEL_KEY] = stream_channel
        future = self.relay.submit(
            function_id=function_id,
            endpoint_id=endpoint_id,
            payload=payload,
            submitter=submitter,
            client_id=self.client_id,
        )
        self.submitted += 1
        return future

    # -- retrieval strategies ------------------------------------------------------
    def wait_future(self, future: TaskFuture):
        """Future-based retrieval (Optimization 1): resume as soon as the result lands."""
        result = yield future.done
        if future.record.status != TaskStatus.COMPLETED:
            raise RuntimeError(f"Task {future.task_id} failed: {future.record.error}")
        return result

    def wait_polling(self, future: TaskFuture):
        """Legacy polling retrieval: check status every ``poll_interval_s`` seconds."""
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.poll_interval_s)
            if cfg.poll_latency_s > 0:
                yield self.env.timeout(cfg.poll_latency_s)
            status = self.relay.get_status(future.task_id)
            if status.terminal:
                break
        if status != TaskStatus.COMPLETED:
            raise RuntimeError(f"Task {future.task_id} failed: {future.record.error}")
        return self.relay.get_result(future.task_id)

    def get_status(self, task_id: str) -> TaskStatus:
        return self.relay.get_status(task_id)
