"""Globus-Compute-like Function-as-a-Service substrate.

The relay (cloud service), compute endpoints deployed on clusters, the
function registry, task records/futures and the client SDK used by the
Inference Gateway.  Together these reproduce §3.2 of the paper, including
auto-scaling, hot-node management, fault tolerance and the pre-registered
function security model.
"""

from .client import ComputeClient, ComputeClientConfig
from .endpoint import ComputeEndpoint, EndpointConfig, ModelHostingConfig, ModelPoolStatus
from .functions import (
    HANDLER_BATCH,
    HANDLER_CHAT,
    HANDLER_EMBEDDING,
    FunctionRegistry,
    RegisteredFunction,
)
from .relay import RelayBoundaryProxy, RelayConfig, RelayService, RelayStats
from .task import TaskFuture, TaskRecord, TaskStatus

__all__ = [
    "FunctionRegistry",
    "RegisteredFunction",
    "HANDLER_CHAT",
    "HANDLER_EMBEDDING",
    "HANDLER_BATCH",
    "TaskRecord",
    "TaskFuture",
    "TaskStatus",
    "RelayService",
    "RelayConfig",
    "RelayBoundaryProxy",
    "RelayStats",
    "ComputeEndpoint",
    "EndpointConfig",
    "ModelHostingConfig",
    "ModelPoolStatus",
    "ComputeClient",
    "ComputeClientConfig",
]
