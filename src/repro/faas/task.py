"""Task records and futures for the FaaS layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..sim import Environment, Event

__all__ = ["TaskStatus", "TaskRecord", "TaskFuture"]


class TaskStatus(str, enum.Enum):
    """Lifecycle of a compute task as reported by the relay."""

    PENDING = "pending"          # accepted by the cloud service, waiting for dispatch
    DISPATCHED = "dispatched"    # handed to the endpoint
    RUNNING = "running"          # executing on the endpoint
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (TaskStatus.COMPLETED, TaskStatus.FAILED, TaskStatus.CANCELLED)


@dataclass
class TaskRecord:
    """Cloud-side record of a task."""

    task_id: str
    function_id: str
    endpoint_id: str
    payload: Dict[str, Any]
    submitter: str = ""
    status: TaskStatus = TaskStatus.PENDING
    submit_time: float = 0.0
    dispatch_time: Optional[float] = None
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    result: Any = None
    error: Optional[str] = None

    @property
    def queue_time_s(self) -> Optional[float]:
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.submit_time

    @property
    def total_time_s(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "function_id": self.function_id,
            "endpoint_id": self.endpoint_id,
            "status": self.status.value,
            "submit_time": self.submit_time,
            "completion_time": self.completion_time,
            "error": self.error,
        }


class TaskFuture:
    """Future returned by the Compute client SDK.

    ``done`` is a simulation event that succeeds with the task result as
    soon as the relay delivers it (the "concurrent future objects" of
    Optimization 1).  ``record`` exposes the task's status for the legacy
    polling path.
    """

    def __init__(self, env: Environment, record: TaskRecord):
        self.env = env
        self.record = record
        self.done: Event = env.event()

    @property
    def task_id(self) -> str:
        return self.record.task_id

    @property
    def status(self) -> TaskStatus:
        return self.record.status

    def resolve(self, result: Any) -> None:
        if not self.done.triggered:
            self.done.succeed(result)

    def reject(self, error: str) -> None:
        self.record.error = error
        if not self.done.triggered:
            self.done.succeed(None)
