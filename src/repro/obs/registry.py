"""Unified metrics registry: Counter / Gauge / Histogram + Prometheus text.

Histograms are backed by :class:`repro.metrics.mergeable.LogBucketHistogram`
so sweep shards merge *exactly*: the merged registry of N shards is
bit-identical to the registry of a single run over the union of samples
(pinned by tests).  Everything is pure Python — the registry works
unchanged on the no-numpy CI job.

Exposition follows the Prometheus text format (``# HELP`` / ``# TYPE``
headers, cumulative ``_bucket{le=...}`` lines ending in ``+Inf``, ``_sum``
and ``_count``), served by the gateway as ``GET /v1/metrics``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics.mergeable import DEFAULT_REL_ERR, LogBucketHistogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labelnames: Tuple[str, ...], labels: dict) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}")
    return tuple(str(labels[name]) for name in labelnames)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: Tuple[str, ...], key: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{name}="{_escape(value)}"' for name, value in zip(labelnames, key)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    """Shared labelled-children plumbing for all three metric types."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels):
        key = _label_key(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _sorted_children(self):
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing counter."""

    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)

    @property
    def value(self) -> float:
        return sum(child.value for child in self._children.values())

    def expose(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.labelnames, key)} "
                f"{_format_value(child.value)}"
                for key, child in self._sorted_children()]

    def merge(self, other: "Counter") -> None:
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._children[key] = self._new_child()
            mine.value += child.value

    def child_values(self) -> Dict[Tuple[str, ...], float]:
        return {key: child.value for key, child in self._children.items()}


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._children[()].dec(amount)

    @property
    def value(self) -> float:
        return sum(child.value for child in self._children.values())

    def expose(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.labelnames, key)} "
                f"{_format_value(child.value)}"
                for key, child in self._sorted_children()]

    def merge(self, other: "Gauge") -> None:
        # Gauges are point-in-time; summing shards is the only merge that
        # makes sense for in-flight style gauges, and it is what sweeps need.
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._children[key] = self._new_child()
            mine.value += child.value


class _HistogramChild:
    __slots__ = ("hist", "sum")

    def __init__(self, rel_err: float):
        self.hist = LogBucketHistogram(rel_err=rel_err)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.hist.add(value)
        self.sum += value

    @property
    def count(self) -> int:
        return self.hist.count

    def quantile(self, q: float) -> float:
        return self.hist.quantile(q)


class Histogram(_Metric):
    """Log-bucket histogram (mergeable, ~1% relative quantile error)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...] = (),
                 rel_err: float = DEFAULT_REL_ERR):
        self.rel_err = rel_err
        super().__init__(name, help, labelnames)

    def _new_child(self):
        return _HistogramChild(self.rel_err)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def quantile(self, q: float) -> float:
        return self._children[()].quantile(q)

    @property
    def count(self) -> int:
        return sum(child.count for child in self._children.values())

    def expose(self) -> List[str]:
        lines: List[str] = []
        for key, child in self._sorted_children():
            # Cumulative buckets from the sparse log-bucket layout: the
            # upper edge of bucket i is gamma^i (values land in
            # (gamma^{i-1}, gamma^i]); zero_count falls under the smallest
            # tracked edge.
            hist = child.hist
            cumulative = hist.zero_count
            if hist.zero_count:
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(self.labelnames, key, ('le', _format_value(hist.min_value)))}"
                    f" {cumulative}")
            gamma = (1.0 + hist.rel_err) / (1.0 - hist.rel_err)
            for index in sorted(hist.buckets):
                cumulative += hist.buckets[index]
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(self.labelnames, key, ('le', repr(gamma ** index)))}"
                    f" {cumulative}")
            lines.append(
                f"{self.name}_bucket"
                f"{_format_labels(self.labelnames, key, ('le', '+Inf'))} {cumulative}")
            lines.append(f"{self.name}_sum{_format_labels(self.labelnames, key)} "
                         f"{_format_value(child.sum)}")
            lines.append(f"{self.name}_count{_format_labels(self.labelnames, key)} "
                         f"{child.count}")
        return lines

    def merge(self, other: "Histogram") -> None:
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                mine = self._children[key] = self._new_child()
            mine.hist = mine.hist.merge(child.hist)
            mine.sum += child.sum


class MetricsRegistry:
    """Named metrics with idempotent registration and exact shard merge."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(f"metric {name!r} already registered with a "
                                 f"different type or labels")
            return existing
        metric = self._metrics[name] = cls(name, help, tuple(labelnames), **kwargs)
        return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames=(),
                  rel_err: float = DEFAULT_REL_ERR) -> Histogram:
        return self._register(Histogram, name, help, labelnames, rel_err=rel_err)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def prometheus_text(self) -> str:
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (exact for counters/histograms)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = metric
                continue
            if type(mine) is not type(metric) or mine.labelnames != metric.labelnames:
                raise ValueError(f"cannot merge metric {name!r}: layout differs")
            mine.merge(metric)

    # -- (de)serialization for sweep shards --------------------------------
    def to_dict(self) -> dict:
        out: Dict[str, dict] = {}
        for name, metric in self._metrics.items():
            entry = {"kind": metric.kind, "help": metric.help,
                     "labelnames": list(metric.labelnames)}
            if isinstance(metric, Histogram):
                entry["rel_err"] = metric.rel_err
                entry["children"] = {
                    "|".join(key): {"hist": child.hist.to_dict(), "sum": child.sum}
                    for key, child in metric._children.items()}
            else:
                entry["children"] = {
                    "|".join(key): child.value
                    for key, child in metric._children.items()}
            out[name] = entry
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for name, entry in data.items():
            labelnames = tuple(entry["labelnames"])
            if entry["kind"] == "histogram":
                metric = registry.histogram(name, entry["help"], labelnames,
                                            rel_err=entry["rel_err"])
                for joined, payload in entry["children"].items():
                    key = tuple(joined.split("|")) if joined else ()
                    child = metric._children.get(key)
                    if child is None:
                        child = metric._children[key] = metric._new_child()
                    child.hist = LogBucketHistogram.from_dict(payload["hist"])
                    child.sum = payload["sum"]
            else:
                metric = registry._register(kinds[entry["kind"]], name,
                                            entry["help"], labelnames)
                for joined, value in entry["children"].items():
                    key = tuple(joined.split("|")) if joined else ()
                    child = metric._children.get(key)
                    if child is None:
                        child = metric._children[key] = metric._new_child()
                    child.value = value
        return registry
