"""Observability substrate: tracing, metrics registry, kernel profiling.

Eagerly exports only the gateway-independent pieces (trace, registry,
kernel profiler, exporter) — :mod:`repro.serving.engine` imports
:data:`TRACE_KEY` from here, so pulling :mod:`repro.obs.middleware` (which
imports the gateway, which imports serving) at package import time would
create a cycle.  The middleware wiring is reachable lazily as
``repro.obs.middleware`` / via ``__getattr__``.
"""

from .export import dump_chrome_trace, to_chrome_trace
from .kernel import KernelProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (TRACE_KEY, Span, TraceContext, TraceShape, Tracer,
                    TracerConfig, span_tree)

__all__ = [
    "TRACE_KEY",
    "Span",
    "TraceContext",
    "TraceShape",
    "Tracer",
    "TracerConfig",
    "span_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KernelProfiler",
    "to_chrome_trace",
    "dump_chrome_trace",
    # lazy (see __getattr__): gateway-facing wiring
    "ObservabilityConfig",
    "ObservabilityLayer",
    "ObservabilityMiddleware",
    "ObservabilityMiddlewareFactory",
    "observability_middleware_factories",
]

_MIDDLEWARE_EXPORTS = {
    "ObservabilityConfig",
    "ObservabilityLayer",
    "ObservabilityMiddleware",
    "ObservabilityMiddlewareFactory",
    "observability_middleware_factories",
}


def __getattr__(name):
    if name in _MIDDLEWARE_EXPORTS:
        from . import middleware

        return getattr(middleware, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
