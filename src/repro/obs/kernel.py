"""Kernel profiling hooks: what the event loop actually did.

A :class:`KernelProfiler` attaches to a :class:`repro.sim.Environment` via
``env.attach_profiler(profiler)`` and observes every popped event — counts
per event type, decimated queue-depth samples, macro-window widths (fed by
the engine) and wall-time per simulated second.

The no-op guarantee: when no profiler is attached, ``Environment.step``
is the original unhooked method — attaching swaps in an instrumented
instance attribute and detaching removes it, so an idle simulation pays
literally zero overhead (no ``if profiler`` branch on the hot path).
Profiling is also observe-only: it never schedules events or advances
simulated time, so results are bit-identical with or without it.
"""

from __future__ import annotations

import time
from collections import Counter as _CounterDict
from typing import List, Optional, Tuple

__all__ = ["KernelProfiler"]


class KernelProfiler:
    """Counts popped events, samples queue depth and tracks wall-clock."""

    def __init__(self, sample_every: int = 64, max_samples: int = 4096):
        #: Popped events by concrete event class name.
        self.events_by_type = _CounterDict()
        self.events_total = 0
        #: ``(sim_time, queue_depth)`` samples, decimated to stay bounded.
        self.queue_depth_samples: List[Tuple[float, int]] = []
        self._sample_every = max(1, sample_every)
        self._max_samples = max(2, max_samples)
        #: Macro decode windows reported by the engine: count and widths.
        self.windows = 0
        self.window_iterations = 0
        self.window_width_s_total = 0.0
        self.max_window_width_s = 0.0
        # Wall-clock accounting between attach and detach.
        self._attached_env = None
        self._attach_wall: Optional[float] = None
        self._attach_sim: Optional[float] = None
        self.wall_s = 0.0
        self.sim_s = 0.0

    # -- Environment-facing hooks ------------------------------------------
    def attach(self, env) -> None:
        self._attached_env = env
        self._attach_wall = time.perf_counter()
        self._attach_sim = env.now

    def detach(self, env) -> None:
        if self._attach_wall is not None:
            self.wall_s += time.perf_counter() - self._attach_wall
            self.sim_s += env.now - (self._attach_sim or 0.0)
        self._attached_env = None
        self._attach_wall = None
        self._attach_sim = None

    def on_event(self, now: float, event, queue_depth: int) -> None:
        """Called by the instrumented step for every popped event."""
        self.events_by_type[type(event).__name__] += 1
        self.events_total += 1
        if self.events_total % self._sample_every == 0:
            samples = self.queue_depth_samples
            samples.append((now, queue_depth))
            if len(samples) >= self._max_samples:
                # Decimate: keep every other sample, double the stride, so
                # memory stays bounded on arbitrarily long runs.
                del samples[::2]
                self._sample_every *= 2

    def on_window(self, iterations: int, width_s: float) -> None:
        """Called by the engine for every applied macro decode window."""
        self.windows += 1
        self.window_iterations += iterations
        self.window_width_s_total += width_s
        if width_s > self.max_window_width_s:
            self.max_window_width_s = width_s

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Current profile, including a live attach interval if any."""
        wall_s = self.wall_s
        sim_s = self.sim_s
        if self._attach_wall is not None and self._attached_env is not None:
            wall_s += time.perf_counter() - self._attach_wall
            sim_s += self._attached_env.now - (self._attach_sim or 0.0)
        return {
            "events_total": self.events_total,
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "queue_depth_samples": len(self.queue_depth_samples),
            "max_queue_depth": max((d for _, d in self.queue_depth_samples),
                                   default=0),
            "windows": self.windows,
            "window_iterations": self.window_iterations,
            "mean_window_width_s": (self.window_width_s_total / self.windows
                                    if self.windows else 0.0),
            "max_window_width_s": self.max_window_width_s,
            "wall_s": wall_s,
            "sim_s": sim_s,
            "wall_s_per_sim_s": (wall_s / sim_s) if sim_s > 0 else 0.0,
            "events_per_wall_s": (self.events_total / wall_s) if wall_s > 0 else 0.0,
        }
