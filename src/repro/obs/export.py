"""Perfetto / Chrome trace-event JSON export for recorded traces.

Converts a :class:`~repro.obs.trace.TraceContext` (or its ``to_dict()``
form) into the Chrome trace-event format that both ``chrome://tracing``
and https://ui.perfetto.dev load directly.  Timestamps are **simulated**
microseconds (sim seconds × 1e6) — the timeline you see is the simulated
request, not wall clock.  Each layer (gateway / relay / endpoint / engine)
is rendered as its own process row so the request's hop across layers
reads left-to-right, top-to-bottom.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

__all__ = ["to_chrome_trace", "dump_chrome_trace"]

#: Stable row order for the known layers; unknown layers follow after.
_LAYER_ORDER = ("gateway", "relay", "endpoint", "engine")


def _layer_pid(layer: str, pids: Dict[str, int]) -> int:
    if layer not in pids:
        pids[layer] = len(pids) + 1
    return pids[layer]


def to_chrome_trace(trace: Union[dict, object]) -> dict:
    """Render a trace as a Chrome trace-event JSON object.

    Accepts a ``TraceContext`` or its ``to_dict()`` output.  Complete spans
    become ``ph:"X"`` duration events; span events become ``ph:"i"``
    instants; per-layer ``process_name`` metadata labels the rows.
    """
    data = trace if isinstance(trace, dict) else trace.to_dict()
    pids: Dict[str, int] = {layer: i + 1 for i, layer in enumerate(_LAYER_ORDER)}
    events: List[dict] = []
    used_layers = set()

    for span in data["spans"]:
        layer = span["layer"] or "other"
        pid = _layer_pid(layer, pids)
        used_layers.add(layer)
        start_us = span["start"] * 1e6
        end = span["end"] if span["end"] is not None else span["start"]
        events.append({
            "name": span["name"],
            "cat": layer,
            "ph": "X",
            "ts": start_us,
            "dur": max(0.0, end * 1e6 - start_us),
            "pid": pid,
            "tid": 1,
            "args": {"span_id": span["span_id"],
                     "parent_id": span["parent_id"],
                     "status": span["status"],
                     **span["attrs"]},
        })
        for event in span["events"]:
            events.append({
                "name": event["name"],
                "cat": layer,
                "ph": "i",
                "s": "p",  # process-scoped instant marker
                "ts": event["time"] * 1e6,
                "pid": pid,
                "tid": 1,
                "args": dict(event["attrs"]),
            })

    for layer, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        if layer in used_layers:
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": layer},
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": data["trace_id"],
            "simulated_duration_s": data["duration_s"],
            "clock": "simulated",
        },
    }


def dump_chrome_trace(trace: Union[dict, object], path: str) -> None:
    """Write the Chrome trace JSON to ``path`` (open it in Perfetto)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace), fh, indent=1)
