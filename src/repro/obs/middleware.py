"""Gateway wiring for the observability layer.

Per ROADMAP conventions new gateway behavior lands as pipeline stages via
``GatewayConfig.middleware_factories``, never as edits to
``InferenceGatewayAPI``.  :func:`observability_middleware_factories` returns
the stock chain with an :class:`ObservabilityMiddleware` prepended: the
stage begins a :class:`~repro.obs.trace.TraceContext` for every request,
roots the span tree, stamps the request metadata so downstream layers
(relay → endpoint → engine) join the same trace, and records the gateway's
RED metrics (rate/errors/duration) into a mergeable
:class:`~repro.obs.registry.MetricsRegistry`.

The factory is a plain picklable dataclass so deployments configured with
it survive the sweep plane's spawn-based sharding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..gateway.pipeline import Middleware, default_middleware_factories
from .kernel import KernelProfiler
from .registry import MetricsRegistry
from .trace import TRACE_KEY, Tracer, TracerConfig

__all__ = [
    "ObservabilityConfig",
    "ObservabilityLayer",
    "ObservabilityMiddleware",
    "ObservabilityMiddlewareFactory",
    "observability_middleware_factories",
]


@dataclass
class ObservabilityConfig:
    """Deployment-level observability knobs (picklable)."""

    #: Master switch — False builds the stage but records nothing.
    enabled: bool = True
    #: Head-sampling probability for trace retention (see TracerConfig).
    sample_rate: float = 1.0
    #: Always-retained top-K-slowest reservoir size.
    slowest_k: int = 8
    #: FIFO bound on head-sampled retained traces.
    max_traces: int = 256
    #: Per-trace span cap.
    max_spans_per_trace: int = 512
    #: Seed of the deterministic hash-based head-sampling decision.
    seed: int = 0
    #: Relative error of the registry's log-bucket histograms.
    rel_err: float = 0.01
    #: Attach a KernelProfiler to the deployment's Environment.
    profile_kernel: bool = False


class ObservabilityLayer:
    """Tracer + metrics registry + (optional) kernel profiler for one gateway."""

    def __init__(self, env, config: Optional[ObservabilityConfig] = None,
                 rng=None):
        self.env = env
        self.config = config or ObservabilityConfig()
        self.tracer = Tracer(
            env,
            TracerConfig(
                sample_rate=self.config.sample_rate,
                slowest_k=self.config.slowest_k,
                max_traces=self.config.max_traces,
                max_spans_per_trace=self.config.max_spans_per_trace,
            ),
            rng=rng,
            seed=self.config.seed,
        )
        self.registry = MetricsRegistry()
        rel_err = self.config.rel_err
        self.requests_total = self.registry.counter(
            "gateway_requests_total", "Requests finished by the gateway",
            labelnames=("model", "outcome"))
        self.request_latency = self.registry.histogram(
            "gateway_request_latency_seconds",
            "End-to-end simulated request latency", labelnames=("model",),
            rel_err=rel_err)
        self.ttft = self.registry.histogram(
            "gateway_ttft_seconds",
            "Gateway-observed time to first streamed token",
            labelnames=("model",), rel_err=rel_err)
        self.tokens_total = self.registry.counter(
            "gateway_tokens_total", "Tokens through the gateway",
            labelnames=("model", "kind"))
        self.in_flight = self.registry.gauge(
            "gateway_in_flight_requests", "Requests currently in the pipeline")
        self.kernel_profiler: Optional[KernelProfiler] = None
        if self.config.profile_kernel:
            self.kernel_profiler = KernelProfiler()
            env.attach_profiler(self.kernel_profiler)

    # -- exposition ---------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus text exposition of the registry."""
        return self.registry.prometheus_text()

    def trace(self, trace_id: str) -> Optional[dict]:
        ctx = self.tracer.get(trace_id)
        return ctx.to_dict() if ctx is not None else None

    def trace_perfetto(self, trace_id: str) -> Optional[dict]:
        ctx = self.tracer.get(trace_id)
        if ctx is None:
            return None
        from .export import to_chrome_trace

        return to_chrome_trace(ctx)

    def summary(self) -> dict:
        """JSON-serializable snapshot for the gateway dashboard."""
        out = {"tracing": self.tracer.stats(),
               "slowest": [{"trace_id": tid, "duration_s": dur}
                           for dur, tid in self.tracer.slowest()]}
        if self.kernel_profiler is not None:
            out["kernel"] = self.kernel_profiler.snapshot()
        return out


class ObservabilityMiddleware(Middleware):
    """First pipeline stage: root the trace, record RED metrics on unwind."""

    name = "observability"

    def __init__(self, api, layer: ObservabilityLayer):
        super().__init__(api)
        self.layer = layer

    def process(self, ctx, call_next):
        layer = self.layer
        if not layer.config.enabled:
            yield from call_next(ctx)
            return
        request = ctx.request
        tctx = layer.tracer.begin(request.request_id)
        if not tctx.recording:
            # The trace has no path to retention: record metrics only, keep
            # the span machinery (and the downstream layers) untouched.
            yield from self._metrics_only(ctx, call_next)
            layer.tracer.finish(tctx)
            return
        ctx.trace_context = tctx
        # The trace rides the request's own metadata downstream (relay →
        # endpoint → engine), the same way the stream channel travels.
        request.metadata[TRACE_KEY] = tctx
        root = tctx.start_span(
            "gateway.request", layer="gateway",
            attrs={"model": request.model, "kind": request.kind.value,
                   "stream": ctx.streaming})
        tctx.current = root
        layer.in_flight.inc()
        outcome = "exception"
        try:
            yield from call_next(ctx)
            outcome = self._record_result(ctx)
        except Exception as exc:
            root.status = f"error:{type(exc).__name__}"
            raise
        finally:
            self._record_finish(ctx, outcome)
            root.attrs["outcome"] = outcome
            tctx.end_span(root)
            tctx.current = None
            # Drop our metadata entry if the request never reached the
            # engine (which pops it from result metadata itself).
            request.metadata.pop(TRACE_KEY, None)
            layer.tracer.finish(tctx)

    def _metrics_only(self, ctx, call_next):
        """The unretained-trace fast path: RED metrics, no spans."""
        self.layer.in_flight.inc()
        outcome = "exception"
        try:
            yield from call_next(ctx)
            outcome = self._record_result(ctx)
        finally:
            self._record_finish(ctx, outcome)

    def _record_result(self, ctx) -> str:
        """Classify the finished pipeline run; counts tokens on success."""
        layer = self.layer
        result = ctx.result
        if result is None or not result.success:
            return "failure"
        model = ctx.model_name or ctx.request.model
        layer.tokens_total.labels(model=model,
                                  kind="prompt").inc(result.prompt_tokens)
        layer.tokens_total.labels(model=model,
                                  kind="output").inc(result.output_tokens)
        return "cache_hit" if ctx.cache_hit else "success"

    def _record_finish(self, ctx, outcome: str) -> None:
        layer = self.layer
        model = ctx.model_name or ctx.request.model
        layer.in_flight.dec()
        layer.requests_total.labels(model=model, outcome=outcome).inc()
        layer.request_latency.labels(model=model).observe(
            layer.env.now - ctx.started_at)
        if ctx.gateway_token_times:
            layer.ttft.labels(model=model).observe(
                ctx.gateway_token_times[0] - ctx.started_at)


@dataclass
class ObservabilityMiddlewareFactory:
    """Picklable factory: builds the layer once and publishes it on the api.

    The gateway application exposes the layer as ``api.observability`` so
    the ``GET /v1/metrics`` and ``GET /v1/traces/{id}`` endpoints (and the
    dashboard) can reach it.
    """

    config: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    def __call__(self, api) -> ObservabilityMiddleware:
        layer = ObservabilityLayer(api.env, self.config)
        api.observability = layer
        return ObservabilityMiddleware(api, layer)


def observability_middleware_factories(
    config: Optional[ObservabilityConfig] = None,
) -> List:
    """The stock gateway chain with the observability stage prepended."""
    return [ObservabilityMiddlewareFactory(config or ObservabilityConfig()),
            *default_middleware_factories()]
