"""Simulated-time distributed tracing (the flight recorder's span layer).

A :class:`TraceContext` is created per gateway request and carried *with*
the request through every layer (gateway pipeline → relay → endpoint →
engine) inside ``InferenceRequest.metadata`` under :data:`TRACE_KEY` — the
same transport pattern the streaming channel uses
(:data:`repro.serving.stream.STREAM_CHANNEL_KEY`).  Each layer records
:class:`Span`\\ s stamped with **simulated** time (``env.now``), so a trace
explains where one request's simulated latency went: stage costs, routing,
relay transfer, endpoint queue wait, admission, prefill, every decode
window, preemptions, stream delivery.

Everything here is observe-only by construction: recording a span performs
no simulated-time spends, schedules no events and draws no random numbers,
so simulation results are bit-identical with tracing on or off (pinned by
golden-trace tests).

Retention is three-tier so interesting exemplars survive aggressive sampling:

* **head sampling** — the keep/drop decision is made at ``begin`` time
  (deterministically, from a hash of the trace id, or from an optional
  seeded :class:`~repro.common.RandomSource`), and head-kept traces live in
  a bounded FIFO ring;
* **top-K-slowest reservoir** — independent of the head decision, the K
  slowest finished traces are always retained, so the worst requests are
  inspectable even at ``sample_rate=0``;
* **tail sampling** — an optional shape predicate
  (:attr:`TracerConfig.tail_predicate`) inspects the *finished* trace's
  :class:`TraceShape` — span count, error spans, layers crossed,
  cross-cluster hops, duration — and keeps matches in their own bounded
  FIFO ring.  Head sampling can only gamble at begin time; the tail tier
  keeps every error or every multi-cluster request deterministically.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..common import stable_seed

__all__ = [
    "TRACE_KEY",
    "Span",
    "TraceContext",
    "TraceShape",
    "Tracer",
    "TracerConfig",
    "span_tree",
]

#: Metadata key under which the :class:`TraceContext` travels with a request
#: (popped from result metadata by the engine, like the stream channel).
TRACE_KEY = "obs.trace"


class Span:
    """One timed operation inside a trace, stamped with simulated time."""

    __slots__ = ("name", "span_id", "parent_id", "layer", "start", "end",
                 "status", "attrs", "events")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 layer: str, start: float):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: Which layer recorded the span ("gateway" | "relay" | "endpoint" |
        #: "engine" | ...); drives the Perfetto process grouping.
        self.layer = layer
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, Any] = {}
        #: Point-in-time events on this span: ``(time, name, attrs)``.
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []

    @property
    def duration_s(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": dict(self.attrs),
            "events": [
                {"time": t, "name": name, "attrs": dict(attrs)}
                for t, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
                f"[{self.start:.3f}, {self.end}], status={self.status})")


class TraceContext:
    """Span recorder for one request, shared by every layer it traverses.

    ``current`` is the *pipeline-managed* active span: only the gateway
    pipeline (which runs strictly sequentially per request) mutates it.
    Downstream layers (relay/endpoint/engine) run concurrently with the
    suspended dispatch stage, so they never write ``current`` — they read it
    once as their parent anchor and build their own subtrees with explicit
    parents.  That keeps parent/child nesting deterministic without any
    cross-process span stack.
    """

    __slots__ = ("trace_id", "env", "sampled", "recording", "started_at",
                 "finished_at", "spans", "current", "max_spans",
                 "dropped_spans", "_next_id")

    def __init__(self, trace_id: str, env, sampled: bool, max_spans: int = 512,
                 recording: bool = True):
        self.trace_id = trace_id
        self.env = env
        #: Head-sampling decision, fixed at begin time (retention also keeps
        #: unsampled traces that land in the slowest-K reservoir).
        self.sampled = sampled
        #: False when the trace can never be retained (not head-sampled and
        #: no slowest-K reservoir): the gateway then skips span recording
        #: and never propagates the context downstream, which is what keeps
        #: the sampling-off overhead within the BENCH_obs gate.
        self.recording = recording
        self.started_at = env.now
        self.finished_at: Optional[float] = None
        self.spans: List[Span] = []
        #: Active gateway-pipeline span (see class docstring).
        self.current: Optional[Span] = None
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._next_id = 0

    # -- span recording ----------------------------------------------------
    def start_span(self, name: str, parent: Optional[Span] = None,
                   layer: str = "", attrs: Optional[dict] = None,
                   t: Optional[float] = None) -> Span:
        """Open a span at simulated time ``t`` (default: now).

        Beyond ``max_spans`` the span object still works (callers never need
        to branch) but is not recorded; ``dropped_spans`` counts the loss.
        """
        span_id = f"s{self._next_id}"
        self._next_id += 1
        span = Span(name, span_id, parent.span_id if parent is not None else None,
                    layer, self.env.now if t is None else t)
        if attrs:
            span.attrs.update(attrs)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        return span

    def end_span(self, span: Span, t: Optional[float] = None) -> None:
        span.end = self.env.now if t is None else t

    def event(self, span: Span, name: str, t: Optional[float] = None,
              **attrs: Any) -> None:
        """Record a point-in-time event on ``span``."""
        span.events.append((self.env.now if t is None else t, name, attrs))

    # -- queries -----------------------------------------------------------
    @property
    def duration_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.env.now
        return end - self.started_at

    def find_spans(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration_s,
            "dropped_spans": self.dropped_spans,
            "spans": [s.to_dict() for s in self.spans],
        }


def span_tree(spans: List[dict]) -> List[dict]:
    """Nest a flat ``to_dict()['spans']`` list into parent/child trees.

    Returns the list of roots; each node gains a ``"children"`` list.
    Orphans (parent dropped by the span cap) surface as roots.
    """
    nodes = {s["span_id"]: dict(s, children=[]) for s in spans}
    roots: List[dict] = []
    for span in spans:
        node = nodes[span["span_id"]]
        parent = nodes.get(span["parent_id"]) if span["parent_id"] else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


@dataclass
class TraceShape:
    """Cheap structural summary of a finished trace, fed to tail predicates.

    Built once per :meth:`Tracer.finish` (only when a
    :attr:`~TracerConfig.tail_predicate` is installed) from the recorded
    spans — no span objects escape, so predicates cannot mutate the trace.
    """

    trace_id: str = ""
    duration_s: float = 0.0
    span_count: int = 0
    #: Spans recorded but not stored (past the per-trace cap).
    dropped_spans: int = 0
    #: Spans whose status is anything but ``"ok"``.
    error_spans: int = 0
    #: Distinct recording layers, sorted ("engine", "gateway", "relay", ...).
    layers: Tuple[str, ...] = ()
    #: Distinct cluster/endpoint identities seen in span attrs, sorted.
    clusters: Tuple[str, ...] = ()
    #: Boundary crossings implied by ``clusters`` (0 for single-cluster).
    cross_cluster_hops: int = 0

    @classmethod
    def from_context(cls, ctx: "TraceContext") -> "TraceShape":
        errors = 0
        layers: Set[str] = set()
        clusters: Set[str] = set()
        for span in ctx.spans:
            if span.status != "ok":
                errors += 1
            if span.layer:
                layers.add(span.layer)
            where = span.attrs.get("cluster") or span.attrs.get("endpoint")
            if where:
                clusters.add(str(where))
        return cls(
            trace_id=ctx.trace_id,
            duration_s=ctx.duration_s,
            span_count=len(ctx.spans),
            dropped_spans=ctx.dropped_spans,
            error_spans=errors,
            layers=tuple(sorted(layers)),
            clusters=tuple(sorted(clusters)),
            cross_cluster_hops=max(0, len(clusters) - 1),
        )


@dataclass
class TracerConfig:
    """Sampling and retention policy of a :class:`Tracer`."""

    #: Head-sampling probability in [0, 1].  0 keeps only the slowest-K.
    sample_rate: float = 1.0
    #: The K slowest finished traces are always retained (0 disables).
    slowest_k: int = 8
    #: Bound on head-sampled traces retained (FIFO eviction).
    max_traces: int = 256
    #: Per-trace span cap (excess spans are counted, not stored).
    max_spans_per_trace: int = 512
    #: Tail-sampling hook: called at finish time with the trace's
    #: :class:`TraceShape`; return True to retain.  ``None`` disables the
    #: tier.  The decision sees the *whole* trace (errors, hop counts),
    #: which begin-time head sampling fundamentally cannot.
    tail_predicate: Optional[Callable[[TraceShape], bool]] = field(
        default=None, repr=False)
    #: Bound on tail-kept traces (FIFO eviction, like the head ring).
    max_tail_traces: int = 64


class Tracer:
    """Creates, finishes and retains :class:`TraceContext`\\ s.

    Sampling is deterministic: by default the head decision is a pure
    function of ``(seed, trace_id)`` (hash-based, order-independent and
    numpy-free); passing a seeded :class:`~repro.common.RandomSource` as
    ``rng`` draws the decision from that stream instead.  Either way the
    decision never touches the simulation's RNG streams or event queue.
    """

    def __init__(self, env, config: Optional[TracerConfig] = None,
                 rng=None, seed: int = 0):
        self.env = env
        self.config = config or TracerConfig()
        self._rng = rng
        if rng is not None:
            # The caller hands this stream over for sampling decisions; mark
            # it so the DetSan runtime sanitizer knows draws from it are a
            # dedicated sampler stream, not sim randomness.
            rng.sampler_only = True
        self._seed = seed
        #: Retained traces by id (head ring ∪ slowest-K reservoir).
        self._traces: Dict[str, TraceContext] = {}
        self._head_ring: Deque[str] = deque()
        self._head_ids: Set[str] = set()
        #: Min-heap of ``(duration, tiebreak, trace_id)`` — the K slowest.
        self._slow: List[Tuple[float, int, str]] = []
        self._slow_ids: Set[str] = set()
        self._tail_ring: Deque[str] = deque()
        self._tail_ids: Set[str] = set()
        self._finish_seq = 0
        # Counters (surfaced on dashboards / the metrics registry).
        self.begun = 0
        self.finished = 0
        self.kept_head = 0
        self.kept_slow = 0
        self.kept_tail = 0

    # -- sampling ----------------------------------------------------------
    def _head_decision(self, trace_id: str) -> bool:
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        if self._rng is not None:
            # detlint: disable=ARCH001 — dedicated sampler stream handed to the
            # tracer for retention decisions (marked sampler_only above); it is
            # never one of the simulation's RandomSource streams.
            return self._rng.uniform() < rate
        # Hash-based: deterministic per (seed, trace_id), order-independent.
        return (stable_seed("obs-head-sample", self._seed, trace_id) % (1 << 53)) \
            < rate * (1 << 53)

    # -- lifecycle ---------------------------------------------------------
    def begin(self, trace_id: str) -> TraceContext:
        """Start recording a trace (the retention decision happens at finish)."""
        self.begun += 1
        sampled = self._head_decision(trace_id)
        # Spans are worth recording only if the trace has some path to
        # retention: the head ring, the slowest-K reservoir, or a tail
        # predicate (both of the latter decide at finish time, so they must
        # see every trace's spans).
        recording = (sampled or self.config.slowest_k > 0
                     or self.config.tail_predicate is not None)
        return TraceContext(trace_id, self.env, sampled,
                            max_spans=self.config.max_spans_per_trace,
                            recording=recording)

    def finish(self, ctx: TraceContext) -> bool:
        """Finalize ``ctx`` and decide retention; returns True when retained."""
        ctx.finished_at = self.env.now
        self.finished += 1
        trace_id = ctx.trace_id
        duration = ctx.duration_s
        retained = False

        if self.config.slowest_k > 0:
            entry = (duration, self._finish_seq, trace_id)
            self._finish_seq += 1
            if len(self._slow) < self.config.slowest_k:
                heapq.heappush(self._slow, entry)
                self._slow_ids.add(trace_id)
                retained = True
                self.kept_slow += 1
            elif entry > self._slow[0]:
                evicted = heapq.heappushpop(self._slow, entry)
                self._slow_ids.discard(evicted[2])
                self._slow_ids.add(trace_id)
                retained = True
                self.kept_slow += 1
                self._traces[trace_id] = ctx  # before dropping the evictee
                self._maybe_drop(evicted[2])

        if ctx.sampled and self.config.max_traces > 0:
            while len(self._head_ring) >= self.config.max_traces:
                old = self._head_ring.popleft()
                self._head_ids.discard(old)
                self._maybe_drop(old)
            self._head_ring.append(trace_id)
            self._head_ids.add(trace_id)
            retained = True
            self.kept_head += 1

        predicate = self.config.tail_predicate
        if predicate is not None and self.config.max_tail_traces > 0 \
                and predicate(TraceShape.from_context(ctx)):
            while len(self._tail_ring) >= self.config.max_tail_traces:
                old = self._tail_ring.popleft()
                self._tail_ids.discard(old)
                self._maybe_drop(old)
            self._tail_ring.append(trace_id)
            self._tail_ids.add(trace_id)
            retained = True
            self.kept_tail += 1

        if retained:
            self._traces[trace_id] = ctx
        return retained

    def _maybe_drop(self, trace_id: str) -> None:
        if trace_id not in self._head_ids and trace_id not in self._slow_ids \
                and trace_id not in self._tail_ids:
            self._traces.pop(trace_id, None)

    # -- retrieval ---------------------------------------------------------
    def get(self, trace_id: str) -> Optional[TraceContext]:
        return self._traces.get(trace_id)

    def trace_ids(self) -> List[str]:
        return sorted(self._traces)

    def slowest(self) -> List[Tuple[float, str]]:
        """Retained ``(duration_s, trace_id)`` reservoir entries, slowest first."""
        return sorted(((d, tid) for d, _, tid in self._slow), reverse=True)

    def tail_ids(self) -> List[str]:
        """Trace ids currently held by the tail-sampling ring, oldest first."""
        return list(self._tail_ring)

    def stats(self) -> dict:
        return {
            "begun": self.begun,
            "finished": self.finished,
            "kept_head": self.kept_head,
            "kept_slow": self.kept_slow,
            "kept_tail": self.kept_tail,
            "retained": len(self._traces),
        }
