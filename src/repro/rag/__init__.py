"""Retrieval-Augmented Generation toolkit (the HPC assistant case study, §6.2)."""

from .chunker import Chunk, chunk_corpus, chunk_document
from .corpus import Document, hpc_documentation_corpus
from .index import FlatIndex, IVFIndex, SearchHit
from .pipeline import RAGAnswer, RAGPipeline

__all__ = [
    "Document",
    "hpc_documentation_corpus",
    "Chunk",
    "chunk_document",
    "chunk_corpus",
    "FlatIndex",
    "IVFIndex",
    "SearchHit",
    "RAGPipeline",
    "RAGAnswer",
]
