"""Retrieval-Augmented Generation pipeline (the HPC assistant of §6.2).

"NVIDIA's NV-Embed-v2 produced dense vector representations of HPC manuals,
guides, and troubleshooting documents, which were stored in a FAISS index for
rapid similarity search.  When a user poses a question, a RAG pipeline
retrieves the most relevant passages and incorporates them into the prompt
sent to the LLM."

The pipeline uses a FIRST client for both halves: the ``/v1/embeddings``
endpoint for vectors and ``/v1/chat/completions`` for the answer.  A
``local_embeddings`` mode bypasses the service and featurises locally, which
is convenient for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..serving import hash_embedding
from .chunker import Chunk, chunk_corpus
from .corpus import Document, hpc_documentation_corpus
from .index import FlatIndex, SearchHit

__all__ = ["RAGAnswer", "RAGPipeline"]


@dataclass
class RAGAnswer:
    """Answer plus provenance."""

    question: str
    answer: str
    retrieved: List[SearchHit] = field(default_factory=list)

    @property
    def sources(self) -> List[str]:
        return [hit.metadata.title for hit in self.retrieved]


class RAGPipeline:
    """Embed a corpus, retrieve relevant chunks, and answer with an LLM."""

    def __init__(
        self,
        client=None,
        embedding_model: str = "nvidia/NV-Embed-v2",
        chat_model: str = "Qwen/Qwen2.5-7B-Instruct",
        embedding_dim: int = 384,
        top_k: int = 3,
        local_embeddings: bool = False,
    ):
        self.client = client
        self.embedding_model = embedding_model
        self.chat_model = chat_model
        self.embedding_dim = embedding_dim
        self.top_k = top_k
        self.local_embeddings = local_embeddings or client is None
        self.index = FlatIndex(dim=self._dim())
        self.chunks: List[Chunk] = []

    def _dim(self) -> int:
        if self.local_embeddings or self.client is None:
            return self.embedding_dim
        return self.client.deployment.catalog.get(self.embedding_model).embedding_dim

    # -- embedding ------------------------------------------------------------------
    def _embed(self, text: str) -> List[float]:
        if self.local_embeddings:
            return hash_embedding(text, self._dim()).tolist()
        response = self.client.embedding(self.embedding_model, text)
        return response["data"][0]["embedding"]

    # -- ingestion ---------------------------------------------------------------------
    def ingest(self, documents: Optional[List[Document]] = None, chunk_tokens: int = 64) -> int:
        """Chunk and index a corpus; returns the number of chunks indexed."""
        documents = documents if documents is not None else hpc_documentation_corpus()
        chunks = chunk_corpus(documents, max_tokens=chunk_tokens)
        vectors = [self._embed(f"{c.title}. {c.text}") for c in chunks]
        self.index.add(vectors, chunks)
        self.chunks.extend(chunks)
        return len(chunks)

    # -- retrieval + generation ------------------------------------------------------------
    def retrieve(self, question: str, k: Optional[int] = None) -> List[SearchHit]:
        return self.index.search(self._embed(question), k=k or self.top_k)

    def build_prompt(self, question: str, hits: List[SearchHit]) -> str:
        context = "\n\n".join(
            f"[{i + 1}] {hit.metadata.title}: {hit.metadata.text}" for i, hit in enumerate(hits)
        )
        return (
            "You are an assistant for a high-performance computing facility. "
            "Use the following documentation excerpts to answer the question.\n\n"
            f"{context}\n\nQuestion: {question}\nAnswer:"
        )

    def answer(self, question: str, max_tokens: int = 200) -> RAGAnswer:
        """Full RAG round trip (blocking when backed by a FIRST client)."""
        hits = self.retrieve(question)
        prompt = self.build_prompt(question, hits)
        if self.client is None:
            text = "Relevant documentation: " + "; ".join(h.metadata.title for h in hits)
        else:
            response = self.client.chat_completion(
                self.chat_model,
                [{"role": "user", "content": prompt}],
                max_tokens=max_tokens,
            )
            text = response["choices"][0]["message"]["content"]
        return RAGAnswer(question=question, answer=text, retrieved=hits)
