"""Synthetic HPC documentation corpus for the RAG case study (§6.2).

The real deployment embedded "HPC manuals, guides, and troubleshooting
documents"; this module ships a small, self-contained corpus with the same
flavour so the retrieval pipeline can be exercised and tested offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["Document", "hpc_documentation_corpus"]


@dataclass(frozen=True)
class Document:
    """A documentation page."""

    doc_id: str
    title: str
    text: str


def hpc_documentation_corpus() -> List[Document]:
    """A compact corpus of HPC-facility documentation pages."""
    pages = [
        ("jobs-pbs", "Submitting jobs with PBS",
         "To submit a job use qsub with a job script. The script selects the queue, "
         "the number of nodes with -l select, and the walltime with -l walltime. "
         "Use qstat to inspect queued jobs and qdel to remove a job from the queue. "
         "Interactive sessions are requested with qsub -I."),
        ("jobs-arrays", "PBS job arrays",
         "Job arrays submit many related tasks with a single qsub -J range command. "
         "Each sub-job receives PBS_ARRAY_INDEX so the script can select its input. "
         "Array jobs share the same resource request and walltime."),
        ("gpu-nodes", "GPU node architecture",
         "Each DGX A100 node provides eight A100 GPUs connected with NVLink and "
         "two AMD Rome CPUs. GPU memory is 40 GB per device on most nodes and 80 GB "
         "on the large-memory nodes. Use nvidia-smi to inspect utilization."),
        ("storage", "Parallel file systems and local SSDs",
         "Home directories are backed by NFS and have small quotas. Project data "
         "belongs on the parallel Lustre file system. Each compute node also offers "
         "a 15 TB local SSD scratch space that is purged when the job ends. Stripe "
         "large files across OSTs for bandwidth."),
        ("modules", "Environment modules",
         "Software is provided through environment modules. Use module avail to list "
         "packages, module load to activate one, and module purge to reset. Conda "
         "environments should be built on the compute nodes to match the CPU arch."),
        ("queues", "Queue policies and wait times",
         "The production queue allows jobs up to 24 hours of walltime. The debug queue "
         "is limited to two nodes and one hour but starts quickly. Backfill lets short "
         "jobs run while large reservations wait, so accurate walltime estimates reduce "
         "queue wait."),
        ("containers", "Running containers",
         "Apptainer (Singularity) images can be executed on compute nodes. Build images "
         "on your workstation, copy the .sif file to the cluster, and bind-mount the "
         "project file system. MPI applications require the matching network libraries "
         "inside the image."),
        ("inference", "Using the inference service",
         "The facility inference service exposes an OpenAI-compatible API secured with "
         "federated authentication. Request an access token, then call the chat "
         "completions endpoint with your model of choice. Batch workloads should use "
         "the batches endpoint to amortize model loading."),
        ("mpi", "MPI and network tuning",
         "Applications communicate over the InfiniBand fabric. Pin ranks to cores with "
         "the launcher's binding options, and enable GPU-direct RDMA for GPU-resident "
         "buffers. Collective performance depends on the fat-tree placement of nodes."),
        ("troubleshooting", "Troubleshooting failed jobs",
         "If a job exits immediately, check the error file for module or path problems. "
         "Out-of-memory kills appear in the scheduler comment field. Nodes that fail "
         "health checks are drained automatically; resubmit and the scheduler will "
         "avoid them."),
        ("accounts", "Accounts and allocations",
         "Access requires an active project allocation. Core-hours are charged per "
         "node-hour multiplied by the node type factor. Use the allocation dashboard "
         "to monitor usage, and request additional time through the director's "
         "discretionary program."),
        ("data-transfer", "Moving data with Globus",
         "Large datasets move between facilities with managed file transfer endpoints. "
         "Authenticate with your institutional identity, pick the source and destination "
         "collections, and the service retries failed chunks automatically."),
    ]
    return [Document(doc_id=d, title=t, text=x) for d, t, x in pages]
