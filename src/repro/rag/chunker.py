"""Document chunking for the RAG pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..serving import estimate_tokens
from .corpus import Document

__all__ = ["Chunk", "chunk_document", "chunk_corpus"]


@dataclass(frozen=True)
class Chunk:
    """A retrievable passage."""

    chunk_id: str
    doc_id: str
    title: str
    text: str

    @property
    def tokens(self) -> int:
        return estimate_tokens(self.text)


def chunk_document(document: Document, max_tokens: int = 64, overlap_words: int = 8) -> List[Chunk]:
    """Split a document into overlapping word-window chunks of ≲ ``max_tokens``."""
    if max_tokens <= 0:
        raise ValueError("max_tokens must be > 0")
    words = document.text.split()
    window = max(8, int(max_tokens * 0.75))  # ~0.75 words per token
    step = max(1, window - overlap_words)
    chunks: List[Chunk] = []
    for start in range(0, len(words), step):
        piece = words[start:start + window]
        if not piece:
            break
        chunks.append(
            Chunk(
                chunk_id=f"{document.doc_id}:{len(chunks)}",
                doc_id=document.doc_id,
                title=document.title,
                text=" ".join(piece),
            )
        )
        if start + window >= len(words):
            break
    return chunks


def chunk_corpus(documents: List[Document], max_tokens: int = 64) -> List[Chunk]:
    chunks: List[Chunk] = []
    for doc in documents:
        chunks.extend(chunk_document(doc, max_tokens=max_tokens))
    return chunks
