"""Vector indexes (the FAISS substitute for the RAG case study, §6.2).

Two index types are provided:

* :class:`FlatIndex` — exact inner-product / cosine search (FAISS
  ``IndexFlatIP`` equivalent);
* :class:`IVFIndex` — an inverted-file index: vectors are clustered with a
  small k-means, queries probe the ``nprobe`` nearest clusters (FAISS
  ``IndexIVFFlat`` equivalent).  Approximate but much cheaper for large
  corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..common.randomness import RandomSource

try:  # Vector search is numpy-only; the module stays importable without it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

__all__ = ["SearchHit", "FlatIndex", "IVFIndex"]


@dataclass
class SearchHit:
    """One nearest-neighbour result."""

    score: float
    metadata: Any
    index: int


def _as_matrix(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    matrix = np.asarray(vectors, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    return matrix


def _normalise(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


class FlatIndex:
    """Exact cosine-similarity search."""

    def __init__(self, dim: int):
        if np is None:
            raise RuntimeError("FlatIndex requires numpy")
        if dim <= 0:
            raise ValueError("dim must be > 0")
        self.dim = dim
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._metadata: List[Any] = []

    def __len__(self) -> int:
        return len(self._metadata)

    def add(self, vectors: Sequence[Sequence[float]], metadata: Sequence[Any]) -> None:
        matrix = _as_matrix(vectors)
        if matrix.shape[1] != self.dim:
            raise ValueError(f"Expected dimension {self.dim}, got {matrix.shape[1]}")
        if matrix.shape[0] != len(metadata):
            raise ValueError("vectors and metadata must have the same length")
        self._vectors = np.vstack([self._vectors, _normalise(matrix)])
        self._metadata.extend(metadata)

    def search(self, query: Sequence[float], k: int = 5) -> List[SearchHit]:
        if len(self) == 0:
            return []
        q = _normalise(_as_matrix(query))[0]
        scores = self._vectors @ q
        k = min(k, len(self))
        top = np.argsort(-scores)[:k]
        return [SearchHit(score=float(scores[i]), metadata=self._metadata[i], index=int(i))
                for i in top]


class IVFIndex:
    """Inverted-file approximate index (k-means coarse quantiser + per-list flat search)."""

    def __init__(self, dim: int, n_lists: int = 8, nprobe: int = 2, seed: int = 0,
                 kmeans_iters: int = 10):
        if np is None:
            raise RuntimeError("IVFIndex requires numpy")
        if dim <= 0 or n_lists <= 0 or nprobe <= 0:
            raise ValueError("dim, n_lists and nprobe must be > 0")
        self.dim = dim
        self.n_lists = n_lists
        self.nprobe = min(nprobe, n_lists)
        self.kmeans_iters = kmeans_iters
        # Same SeedSequence(seed) stream default_rng(seed) would build, but
        # routed through the one sanctioned randomness substrate (DET002).
        self._rng = RandomSource(seed).rng
        self._centroids: Optional[np.ndarray] = None
        self._lists: List[List[int]] = []
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._metadata: List[Any] = []

    def __len__(self) -> int:
        return len(self._metadata)

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, vectors: Sequence[Sequence[float]]) -> None:
        """Fit the coarse quantiser with a small k-means."""
        matrix = _normalise(_as_matrix(vectors))
        n = matrix.shape[0]
        k = min(self.n_lists, n)
        idx = self._rng.choice(n, size=k, replace=False)
        centroids = matrix[idx].copy()
        for _ in range(self.kmeans_iters):
            assignment = np.argmax(matrix @ centroids.T, axis=1)
            for c in range(k):
                members = matrix[assignment == c]
                if len(members) > 0:
                    centroid = members.mean(axis=0)
                    norm = np.linalg.norm(centroid)
                    centroids[c] = centroid / norm if norm > 0 else centroid
        self._centroids = centroids
        self.n_lists = k
        self.nprobe = min(self.nprobe, k)
        self._lists = [[] for _ in range(k)]

    def add(self, vectors: Sequence[Sequence[float]], metadata: Sequence[Any]) -> None:
        if not self.is_trained:
            self.train(vectors)
        matrix = _normalise(_as_matrix(vectors))
        if matrix.shape[0] != len(metadata):
            raise ValueError("vectors and metadata must have the same length")
        start = len(self._metadata)
        assignment = np.argmax(matrix @ self._centroids.T, axis=1)
        self._vectors = np.vstack([self._vectors, matrix])
        self._metadata.extend(metadata)
        for offset, cluster in enumerate(assignment):
            self._lists[int(cluster)].append(start + offset)

    def search(self, query: Sequence[float], k: int = 5) -> List[SearchHit]:
        if len(self) == 0 or not self.is_trained:
            return []
        q = _normalise(_as_matrix(query))[0]
        cluster_scores = self._centroids @ q
        probes = np.argsort(-cluster_scores)[: self.nprobe]
        candidates: List[int] = []
        for cluster in probes:
            candidates.extend(self._lists[int(cluster)])
        if not candidates:
            return []
        cand = np.asarray(candidates)
        scores = self._vectors[cand] @ q
        order = np.argsort(-scores)[: min(k, len(cand))]
        return [
            SearchHit(score=float(scores[i]), metadata=self._metadata[int(cand[i])],
                      index=int(cand[i]))
            for i in order
        ]
